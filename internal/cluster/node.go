package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/dterr"
	"repro/internal/store"
)

// maxRepLog bounds the in-memory replication log per hosted shard. A
// follower further behind than the retained window resyncs with a full
// snapshot instead of incremental events.
const maxRepLog = 16384

// repEvent is one retained mutation, ready to ship inside a
// store.EventLog frame.
type repEvent struct {
	seq     uint64
	kind    byte
	payload []byte
}

// hostedShard is one shard served by a node: the collection, its mutation
// generation, and the retained replication log. gen counts mutations;
// every write increments it, and the assigned value doubles as the
// replication sequence number, so "follower applied seq G" and "follower
// is current through generation G" are the same statement. When the node
// runs with a data directory, dur mirrors every retained event to a
// node-local WAL under the same sequence numbers.
type hostedShard struct {
	mu     sync.Mutex
	coll   *store.Collection
	gen    uint64
	events []repEvent
	dur    *shardStore // nil when the node runs without -data-dir
}

// view returns the collection and generation under one lock acquisition.
func (h *hostedShard) view() (*store.Collection, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.coll, h.gen
}

// health captures one shard's readiness view under its lock. now is
// passed in so a batch of shards reports against one clock reading.
func (h *hostedShard) health(now time.Time) ShardHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := ShardHealth{Gen: h.gen}
	if h.dur != nil {
		sh.Durable = true
		sh.WALLag = h.gen - h.dur.cpGen
		if !h.dur.cpAt.IsZero() {
			sh.CheckpointAgeSec = now.Sub(h.dur.cpAt).Seconds()
		}
	}
	return sh
}

// logLocked retains one document mutation event. Must hold h.mu, after
// the mutation was applied and h.gen incremented.
func (h *hostedShard) logLocked(kind byte, id int64, d *store.Doc) error {
	return h.logRawLocked(kind, EncodeIDDoc(id, d))
}

// logRawLocked retains one event with an arbitrary payload and, on a
// durable node, appends it to the shard WAL before the caller
// acknowledges the write. Must hold h.mu, after the mutation was applied
// and h.gen incremented. An error means the event is applied in memory
// but not durable; the caller must withhold the success response.
func (h *hostedShard) logRawLocked(kind byte, payload []byte) error {
	h.events = append(h.events, repEvent{seq: h.gen, kind: kind, payload: payload})
	if len(h.events) > maxRepLog {
		h.events = h.events[len(h.events)-maxRepLog:]
	}
	if h.dur != nil {
		return h.dur.append(h.gen, kind, payload)
	}
	return nil
}

// Node hosts shards and serves the wire protocol over them. One process
// (cmd/dtnode) runs one Node; tests drive a Node directly through the
// loopback transport.
type Node struct {
	name     string
	readOnly bool // follower nodes reject writes

	mu           sync.RWMutex
	shards       map[string]*hostedShard
	replicaProbe func() ReplicaStatus // nil on primaries
}

// NewNode creates an empty node.
func NewNode(name string) *Node {
	return &Node{name: name, shards: make(map[string]*hostedShard)}
}

// NewFollowerNode creates an empty read-only node: replication apply is
// the only mutation path, and write ops over the wire are rejected.
func NewFollowerNode(name string) *Node {
	n := NewNode(name)
	n.readOnly = true
	return n
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// AddShard hosts a collection under the given shard key ("ns/index").
func (n *Node) AddShard(key string, c *store.Collection) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.shards[key] = &hostedShard{coll: c}
}

// ShardKeys returns the hosted shard keys, sorted.
func (n *Node) ShardKeys() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	keys := make([]string, 0, len(n.shards))
	for k := range n.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (n *Node) shard(key string) *hostedShard {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.shards[key]
}

// errResp builds an error response, classifying non-dterr errors as
// invalid argument (they come from decoding a malformed body).
func errResp(id uint64, err error) *Response {
	var de *dterr.Error
	if !errors.As(err, &de) {
		de = dterr.New(dterr.CodeInvalidArgument, err.Error())
	} else {
		de = dterr.FromCode(de.Code, err.Error())
	}
	return &Response{ID: id, Err: de}
}

// Handle dispatches one decoded request and returns its response. It
// never panics on malformed bodies — decode failures become
// invalid-argument responses, which round-trip to typed errors on the
// client.
func (n *Node) Handle(req *Request) *Response {
	if req.Op == OpPing {
		return &Response{ID: req.ID}
	}
	h := n.shard(req.Shard)
	if h == nil {
		return errResp(req.ID, dterr.Newf(dterr.CodeNotFound, "cluster: node %q does not host shard %q", n.name, req.Shard))
	}
	switch req.Op {
	case OpInsert, OpUpdate, OpDelete, OpCreateIndex, OpCreateTextIndex:
		if n.readOnly {
			return errResp(req.ID, dterr.Newf(dterr.CodeUnavailable, "cluster: node %q is a read-only follower", n.name))
		}
		return n.handleWrite(req, h)
	case OpPull:
		return n.handlePull(req, h)
	case OpInfo:
		// Probes bypass the read fence: a coordinator asks "how warm are
		// you" before deciding whether any generation exists to fence on.
		return n.handleInfo(req, h)
	case OpCheckpoint:
		// Checkpointing is local persistence, not a data mutation, so it is
		// allowed on followers too.
		return n.handleCheckpoint(req, h)
	default:
		return n.handleRead(req, h)
	}
}

func (n *Node) handleWrite(req *Request, h *hostedShard) *Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	resp := &Response{ID: req.ID}
	switch req.Op {
	case OpInsert:
		d, err := store.DecodeDoc(req.Body)
		if err != nil {
			return errResp(req.ID, err)
		}
		id := h.coll.Insert(d)
		h.gen++
		if err := h.logLocked(EvInsert, id, d); err != nil {
			return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
		}
		var buf bytes.Buffer
		putUvarint(&buf, uint64(id))
		resp.Body = buf.Bytes()
	case OpUpdate:
		id, d, err := DecodeIDDoc(req.Body)
		if err != nil || d == nil {
			return errResp(req.ID, fmt.Errorf("cluster: update body: %v", err))
		}
		ok := h.coll.Update(id, d)
		if ok {
			h.gen++
			if err := h.logLocked(EvUpdate, id, d); err != nil {
				return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
			}
		}
		resp.Body = boolBody(ok)
	case OpDelete:
		id, _, err := DecodeIDDoc(req.Body)
		if err != nil {
			return errResp(req.ID, err)
		}
		ok := h.coll.Delete(id)
		if ok {
			h.gen++
			if err := h.logLocked(EvDelete, id, nil); err != nil {
				return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
			}
		}
		resp.Body = boolBody(ok)
	case OpCreateIndex:
		name, path, kind, err := DecodeCreateIndex(req.Body)
		if err != nil {
			return errResp(req.ID, err)
		}
		h.coll.EnsureIndex(name, path, kind)
		h.gen++
		if err := h.logRawLocked(EvCreateIndex, req.Body); err != nil {
			return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
		}
	case OpCreateTextIndex:
		rd := bytes.NewReader(req.Body)
		path, err := getString(rd)
		if err != nil {
			return errResp(req.ID, err)
		}
		h.coll.EnsureTextIndex(path)
		h.gen++
		if err := h.logRawLocked(EvCreateTextIndex, req.Body); err != nil {
			return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
		}
	}
	resp.Gen = h.gen
	return resp
}

func (n *Node) handleRead(req *Request, h *hostedShard) *Response {
	coll, gen := h.view()
	if req.MinGen > gen {
		// Read-your-writes fence: this replica has not yet applied the
		// generation the caller observed on its write path. Busy tells the
		// client to fall back to the primary.
		return errResp(req.ID, dterr.Newf(dterr.CodeBusy,
			"cluster: node %q shard %q at generation %d, read requires %d", n.name, req.Shard, gen, req.MinGen))
	}
	resp := &Response{ID: req.ID, Gen: gen}
	switch req.Op {
	case OpFind:
		filter, err := DecodeFilter(req.Body)
		if err != nil {
			return errResp(req.ID, err)
		}
		resp.Body = EncodeDocList(coll.Find(filter))
	case OpCount:
		var buf bytes.Buffer
		putUvarint(&buf, uint64(coll.Count()))
		resp.Body = buf.Bytes()
	case OpCountWhere:
		filter, err := DecodeFilter(req.Body)
		if err != nil {
			return errResp(req.ID, err)
		}
		var buf bytes.Buffer
		putUvarint(&buf, uint64(coll.CountWhere(filter)))
		resp.Body = buf.Bytes()
	case OpDistinct:
		rd := bytes.NewReader(req.Body)
		path, err := getString(rd)
		if err != nil {
			return errResp(req.ID, err)
		}
		resp.Body = EncodeDistinct(coll.Distinct(path))
	case OpStats:
		resp.Body = EncodeStats(coll.Stats())
	case OpSnapshot:
		var ids []int64
		var docs []*store.Doc
		coll.Scan(func(id int64, d *store.Doc) bool {
			ids = append(ids, id)
			docs = append(docs, d)
			return true
		})
		resp.Body = EncodeSnapshot(ids, docs)
	default:
		return errResp(req.ID, dterr.Newf(dterr.CodeInvalidArgument, "cluster: unknown op %d", req.Op))
	}
	return resp
}

// handlePull serves the replication feed: events after the follower's
// sequence number, or a full snapshot when the retained log no longer
// reaches back that far.
func (n *Node) handlePull(req *Request, h *hostedShard) *Response {
	rd := bytes.NewReader(req.Body)
	afterSeq, err := binary.ReadUvarint(rd)
	if err != nil {
		return errResp(req.ID, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	resp := &Response{ID: req.ID, Gen: h.gen}
	oldest := h.gen + 1
	if len(h.events) > 0 {
		oldest = h.events[0].seq
	}
	if afterSeq+1 < oldest {
		// The follower is behind the retained window: full resync. The
		// index manifest ships with the documents so the rebuilt replica
		// serves reads through the same access paths as its primary.
		var ids []int64
		var docs []*store.Doc
		h.coll.Scan(func(id int64, d *store.Doc) bool {
			ids = append(ids, id)
			docs = append(docs, d)
			return true
		})
		var buf bytes.Buffer
		buf.WriteByte(PullSnapshot)
		putBytes(&buf, EncodeIndexManifest(h.coll))
		buf.Write(EncodeSnapshot(ids, docs))
		resp.Body = buf.Bytes()
		return resp
	}
	var buf bytes.Buffer
	buf.WriteByte(PullEvents)
	log, err := store.NewEventLogAt(&buf, afterSeq+1)
	if err != nil {
		return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
	}
	for _, ev := range h.events {
		if ev.seq <= afterSeq {
			continue
		}
		if _, err := log.Append(ev.kind, ev.payload); err != nil {
			return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
		}
	}
	if err := log.Flush(); err != nil {
		return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
	}
	resp.Body = buf.Bytes()
	return resp
}

// handleInfo serves the warm-probe: generation, document count, and
// index manifest, with no read fence applied.
func (n *Node) handleInfo(req *Request, h *hostedShard) *Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	info := ShardInfo{Gen: h.gen, Count: h.coll.Count(), Manifest: EncodeIndexManifest(h.coll)}
	return &Response{ID: req.ID, Gen: h.gen, Body: EncodeShardInfo(info)}
}

// handleCheckpoint persists one shard to the node's data directory on
// demand — the remote side of coordinator-driven checkpoints (SaveStores,
// live checkpoints). Unavailable without -data-dir, which the coordinator
// tolerates the same way it tolerated checkpoints before durability
// existed.
func (n *Node) handleCheckpoint(req *Request, h *hostedShard) *Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dur == nil {
		return errResp(req.ID, dterr.Newf(dterr.CodeUnavailable,
			"cluster: node %q has no data directory; start dtnode with -data-dir", n.name))
	}
	if err := h.dur.checkpoint(h.coll, h.gen); err != nil {
		return errResp(req.ID, dterr.Wrap(dterr.CodeInternal, err))
	}
	return &Response{ID: req.ID, Gen: h.gen}
}

// EnableDurability backs every hosted shard with a directory under root:
// existing state is recovered (checkpoint snapshot + WAL replay), the
// recovered state is re-checkpointed so the WAL restarts compact, and
// every subsequent mutation is appended to the shard WAL before its
// response is sent. Call after AddShard/BuildNode and before serving.
// extentSize sizes recovered collections (same value BuildNode used).
func (n *Node) EnableDurability(root string, extentSize int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for key, h := range n.shards {
		st, err := openShardStore(root, key)
		if err != nil {
			return err
		}
		h.mu.Lock()
		coll, gen, err := st.recover(h.coll, extentSize)
		if err == nil {
			err = st.checkpoint(coll, gen)
		}
		if err == nil {
			h.coll, h.gen, h.dur = coll, gen, st
		}
		h.mu.Unlock()
		if err != nil {
			return dterr.Wrapf(dterr.CodeOf(err), err, "cluster: shard %s", key)
		}
	}
	return nil
}

// Checkpoint persists every hosted shard (snapshot + manifest, WAL
// truncated) — the shutdown path of a durable dtnode. Unavailable when
// the node runs without a data directory.
func (n *Node) Checkpoint() error {
	n.mu.RLock()
	shards := make(map[string]*hostedShard, len(n.shards))
	for k, h := range n.shards {
		shards[k] = h
	}
	n.mu.RUnlock()
	for key, h := range shards {
		h.mu.Lock()
		var err error
		if h.dur == nil {
			err = dterr.New(dterr.CodeUnavailable, "cluster: node has no data directory")
		} else {
			err = h.dur.checkpoint(h.coll, h.gen)
		}
		h.mu.Unlock()
		if err != nil {
			return dterr.Wrapf(dterr.CodeOf(err), err, "cluster: checkpoint %s", key)
		}
	}
	return nil
}

// Close releases durability resources (shard WAL file handles). Safe on
// nodes without durability.
func (n *Node) Close() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var first error
	for _, h := range n.shards {
		h.mu.Lock()
		if h.dur != nil {
			if err := h.dur.close(); err != nil && first == nil {
				first = err
			}
		}
		h.mu.Unlock()
	}
	return first
}

func boolBody(ok bool) []byte {
	if ok {
		return []byte{1}
	}
	return []byte{0}
}

// Serve accepts connections on ln until the listener closes, running one
// goroutine per connection. Requests on a connection are processed
// sequentially, matching the client transport's framing.
func (n *Node) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go n.serveConn(conn)
	}
}

func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		frame, err := store.ReadFrame(r, MaxFrameLen)
		if err != nil {
			return // clean EOF or torn frame: drop the connection either way
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			return // cannot trust the stream past an undecodable request
		}
		resp := n.Handle(req)
		if err := store.WriteFrame(w, resp.Encode()); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ShardHealth is one hosted shard's readiness view: the applied
// generation, whether it is disk-backed, and — on durable shards — how
// far the WAL has run ahead of the last committed checkpoint.
type ShardHealth struct {
	Gen              uint64  `json:"gen"`
	Durable          bool    `json:"durable,omitempty"`
	WALLag           uint64  `json:"wal_lag,omitempty"`
	CheckpointAgeSec float64 `json:"checkpoint_age_sec,omitempty"`
}

// ReplicaStatus is a follower's view of its pull loop: how stale the
// last successful pull is, the last pull error if the loop is failing,
// and the state of the circuit breaker guarding the primary transport.
type ReplicaStatus struct {
	Healthy        bool    `json:"healthy"`
	LastPullAgeSec float64 `json:"last_pull_age_sec,omitempty"`
	LastError      string  `json:"last_error,omitempty"`
	Breaker        string  `json:"breaker,omitempty"`
}

// Readiness is the full /healthz document: liveness (the process
// answered) plus readiness (a follower is keeping up with its primary).
// Status is "ok" or "degraded" and mirrors Ready for humans.
type Readiness struct {
	Status  string                 `json:"status"`
	Node    string                 `json:"node"`
	Role    string                 `json:"role"`
	Ready   bool                   `json:"ready"`
	Shards  map[string]ShardHealth `json:"shards"`
	Replica *ReplicaStatus         `json:"replica,omitempty"`
}

// SetReplicaProbe installs the callback Readiness uses to report
// replication health — wired by dtnode when it runs as a follower. The
// probe is invoked outside any node lock.
func (n *Node) SetReplicaProbe(probe func() ReplicaStatus) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replicaProbe = probe
}

// Readiness snapshots the node's health document: per-shard generation,
// WAL lag, and checkpoint age, plus the replica pull status on
// followers. A node with no replica probe is always ready; a follower is
// ready only while its pull loop reports healthy.
func (n *Node) Readiness() Readiness {
	now := time.Now()
	n.mu.RLock()
	rd := Readiness{
		Node:   n.name,
		Role:   "primary",
		Shards: make(map[string]ShardHealth, len(n.shards)),
	}
	if n.readOnly {
		rd.Role = "follower"
	}
	for key, h := range n.shards {
		rd.Shards[key] = h.health(now)
	}
	probe := n.replicaProbe
	n.mu.RUnlock()
	rd.Ready = true
	if probe != nil {
		st := probe()
		rd.Replica = &st
		rd.Ready = st.Healthy
	}
	rd.Status = "ok"
	if !rd.Ready {
		rd.Status = "degraded"
	}
	return rd
}

// HealthHandler serves GET /healthz-style liveness and readiness: node
// name, role, per-shard health (generation, WAL lag, checkpoint age),
// and replica pull status on followers. A degraded follower answers 503
// so load balancers and orchestration probes see it without parsing the
// body.
func (n *Node) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rd := n.Readiness()
		w.Header().Set("Content-Type", "application/json")
		if !rd.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(rd)
	})
}

// Follower pulls the replication feed of a primary node into a local
// (read-only) node at a fixed interval, keeping each hosted shard's
// applied generation in step with the primary's mutation generation.
type Follower struct {
	node     *Node
	primary  Transport
	interval time.Duration

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	lastOK  time.Time // last fully successful PullOnce
	lastErr error     // error from the most recent PullOnce, nil on success
}

// NewFollower wires node to pull from primary every interval (0 selects
// 50ms). The node's hosted shard keys define what is replicated.
func NewFollower(node *Node, primary Transport, interval time.Duration) *Follower {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &Follower{
		node:     node,
		primary:  primary,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the pull loop. An initial synchronous pull is attempted
// so a freshly started follower is current before the first tick; its
// failure is not fatal (the loop retries).
func (f *Follower) Start() {
	f.PullOnce()
	go f.loop()
}

// Stop terminates the pull loop and waits for it to exit.
func (f *Follower) Stop() {
	close(f.stop)
	<-f.done
}

func (f *Follower) loop() {
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.PullOnce()
		}
	}
}

// PullOnce pulls every hosted shard once, returning the first error. A
// failed pull leaves the shard at its previous generation — reads keep
// serving the older snapshot, and the read-your-writes fence keeps
// lagging results away from clients that demand newer ones.
func (f *Follower) PullOnce() error {
	var first error
	for _, key := range f.node.ShardKeys() {
		if err := f.pullShard(key); err != nil && first == nil {
			first = err
		}
	}
	now := time.Now()
	f.mu.Lock()
	f.lastErr = first
	if first == nil {
		f.lastOK = now
	}
	f.mu.Unlock()
	return first
}

// Status reports the pull loop's health for readiness probes: healthy
// while the most recent pull succeeded. The Breaker field is left empty;
// the caller that wired a breaker around the primary transport fills it
// in (the follower itself does not know how its transport is wrapped).
func (f *Follower) Status() ReplicaStatus {
	now := time.Now()
	f.mu.Lock()
	lastOK, lastErr := f.lastOK, f.lastErr
	f.mu.Unlock()
	st := ReplicaStatus{Healthy: lastErr == nil && !lastOK.IsZero()}
	if !lastOK.IsZero() {
		st.LastPullAgeSec = now.Sub(lastOK).Seconds()
	}
	if lastErr != nil {
		st.LastError = lastErr.Error()
	}
	return st
}

func (f *Follower) pullShard(key string) error {
	h := f.node.shard(key)
	if h == nil {
		return dterr.Newf(dterr.CodeNotFound, "cluster: follower does not host %q", key)
	}
	_, after := h.view()
	ctx, cancel := context.WithTimeout(context.Background(), DefaultCallTimeout)
	defer cancel()
	var body bytes.Buffer
	putUvarint(&body, after)
	resp, err := f.primary.Call(ctx, &Request{Op: OpPull, Shard: key, Body: body.Bytes()})
	if err != nil {
		return err
	}
	if resp.Err != nil {
		return resp.Err
	}
	if len(resp.Body) == 0 {
		return dterr.New(dterr.CodeInternal, "cluster: empty pull response")
	}
	switch resp.Body[0] {
	case PullSnapshot:
		// The primary ships its index manifest ahead of the documents, so
		// the rebuilt collection re-creates every secondary and text index
		// instead of silently serving unindexed reads until the next
		// index-create event.
		rd := bytes.NewReader(resp.Body[1:])
		manifest, err := getBytes(rd)
		if err != nil {
			return dterr.Wrap(dterr.CodeInternal, err)
		}
		ids, docs, err := DecodeSnapshot(resp.Body[len(resp.Body)-rd.Len():])
		if err != nil {
			return dterr.Wrap(dterr.CodeInternal, err)
		}
		fresh := store.NewCollection(nsOf(key), 0)
		if err := ApplyIndexManifest(fresh, manifest); err != nil {
			return dterr.Wrap(dterr.CodeInternal, err)
		}
		for i, id := range ids {
			fresh.ApplyReplay(id, docs[i])
		}
		h.mu.Lock()
		h.coll = fresh
		h.gen = resp.Gen
		var derr error
		if h.dur != nil {
			// The resync jumped the generation; a checkpoint re-anchors the
			// shard WAL at the new position.
			derr = h.dur.checkpoint(fresh, resp.Gen)
		}
		h.mu.Unlock()
		if derr != nil {
			return dterr.Wrap(dterr.CodeInternal, derr)
		}
		return nil
	case PullEvents:
		h.mu.Lock()
		defer h.mu.Unlock()
		stats, err := store.ReplayEventLog(bytes.NewReader(resp.Body[1:]), after,
			func(seq uint64, kind byte, payload []byte) error {
				if err := applyEvent(h.coll, kind, payload); err != nil {
					return err
				}
				if h.dur != nil {
					if err := h.dur.append(seq, kind, payload); err != nil {
						return err
					}
				}
				h.gen = seq
				return nil
			})
		if err != nil {
			return dterr.Wrap(dterr.CodeInternal, err)
		}
		if stats.Truncated {
			return dterr.New(dterr.CodeInternal, "cluster: torn replication feed")
		}
		return nil
	default:
		return dterr.Newf(dterr.CodeInternal, "cluster: unknown pull flag %d", resp.Body[0])
	}
}

// nsOf extracts the namespace from a shard key ("dt.entity/2" →
// "dt.entity").
func nsOf(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[:i]
		}
	}
	return key
}
