package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/dterr"
	"repro/internal/store"
)

// RemoteShard implements store.ShardBackend over the wire: one shard of a
// namespace, hosted by a primary node and optionally mirrored by a
// follower. Writes always go to the primary; reads prefer the follower
// and carry the highest generation this client has observed, so a lagging
// replica answers Busy and the read falls back to the primary —
// read-your-writes without coordination.
type RemoteShard struct {
	ns       string
	key      string
	primary  Transport
	follower Transport // nil when the shard has no replica

	// lastGen is the highest shard generation observed on any response,
	// i.e. the freshness this client is entitled to read.
	lastGen atomic.Uint64
}

// NewRemoteShard binds shard idx of namespace ns to its transports.
// follower may be nil.
func NewRemoteShard(ns string, idx int, primary, follower Transport) *RemoteShard {
	return &RemoteShard{ns: ns, key: ShardKey(ns, idx), primary: primary, follower: follower}
}

// NS implements store.ShardBackend.
func (r *RemoteShard) NS() string { return r.ns }

// observe folds a response generation into the freshness watermark.
func (r *RemoteShard) observe(gen uint64) {
	for {
		cur := r.lastGen.Load()
		if gen <= cur || r.lastGen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// callPrimary sends a request to the primary, surfacing the node's typed
// error when present and tracking the generation watermark.
func (r *RemoteShard) callPrimary(ctx context.Context, op byte, body []byte) (*Response, error) {
	resp, err := r.primary.Call(ctx, &Request{Op: op, Shard: r.key, Body: body})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	r.observe(resp.Gen)
	return resp, nil
}

// callRead sends a read to the follower first (fenced at the observed
// generation) and falls back to the primary on any follower failure —
// lagging replica, connection refused, decode error. Context errors are
// not retried: the caller's deadline applies to the whole read.
func (r *RemoteShard) callRead(ctx context.Context, op byte, body []byte) (*Response, error) {
	if r.follower != nil {
		resp, err := r.follower.Call(ctx, &Request{Op: op, Shard: r.key, MinGen: r.lastGen.Load(), Body: body})
		if err == nil && resp.Err == nil {
			// A successful follower response advances the freshness
			// watermark too: the fence must reflect every generation this
			// client has observed, not just the ones primaries reported.
			r.observe(resp.Gen)
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, dterr.FromContext(ctx.Err())
		}
	}
	return r.callPrimary(ctx, op, body)
}

// Insert implements store.ShardBackend.
func (r *RemoteShard) Insert(ctx context.Context, d *store.Doc) (int64, error) {
	resp, err := r.callPrimary(ctx, OpInsert, store.EncodeDoc(d))
	if err != nil {
		return 0, err
	}
	id, n := binary.Uvarint(resp.Body)
	if n <= 0 {
		return 0, dterr.New(dterr.CodeInternal, "cluster: malformed insert response")
	}
	return int64(id), nil
}

// Update implements store.ShardBackend.
func (r *RemoteShard) Update(ctx context.Context, id int64, d *store.Doc) (bool, error) {
	resp, err := r.callPrimary(ctx, OpUpdate, EncodeIDDoc(id, d))
	if err != nil {
		return false, err
	}
	return boolFromBody(resp.Body)
}

// Delete implements store.ShardBackend.
func (r *RemoteShard) Delete(ctx context.Context, id int64) (bool, error) {
	resp, err := r.callPrimary(ctx, OpDelete, EncodeIDDoc(id, nil))
	if err != nil {
		return false, err
	}
	return boolFromBody(resp.Body)
}

// Find implements store.ShardBackend.
func (r *RemoteShard) Find(ctx context.Context, filter store.Filter) ([]*store.Doc, error) {
	body, err := EncodeFilter(filter)
	if err != nil {
		return nil, err
	}
	resp, err := r.callRead(ctx, OpFind, body)
	if err != nil {
		return nil, err
	}
	return DecodeDocList(resp.Body)
}

// Count implements store.ShardBackend.
func (r *RemoteShard) Count(ctx context.Context) (int64, error) {
	resp, err := r.callRead(ctx, OpCount, nil)
	if err != nil {
		return 0, err
	}
	n, w := binary.Uvarint(resp.Body)
	if w <= 0 {
		return 0, dterr.New(dterr.CodeInternal, "cluster: malformed count response")
	}
	return int64(n), nil
}

// CountWhere implements store.ShardBackend.
func (r *RemoteShard) CountWhere(ctx context.Context, filter store.Filter) (int64, error) {
	body, err := EncodeFilter(filter)
	if err != nil {
		return 0, err
	}
	resp, err := r.callRead(ctx, OpCountWhere, body)
	if err != nil {
		return 0, err
	}
	n, w := binary.Uvarint(resp.Body)
	if w <= 0 {
		return 0, dterr.New(dterr.CodeInternal, "cluster: malformed count response")
	}
	return int64(n), nil
}

// Distinct implements store.ShardBackend.
func (r *RemoteShard) Distinct(ctx context.Context, path string) (map[string]int64, error) {
	var buf bytes.Buffer
	putString(&buf, path)
	resp, err := r.callRead(ctx, OpDistinct, buf.Bytes())
	if err != nil {
		return nil, err
	}
	return DecodeDistinct(resp.Body)
}

// Stats implements store.ShardBackend. Stats go to the primary: a
// follower rebuilt from a snapshot resync carries the primary's indexes
// but not its extent history, so only the primary's extent accounting is
// authoritative.
func (r *RemoteShard) Stats(ctx context.Context) (store.Stats, error) {
	resp, err := r.callPrimary(ctx, OpStats, nil)
	if err != nil {
		return store.Stats{}, err
	}
	return DecodeStats(resp.Body)
}

// Snapshot implements store.ShardBackend.
func (r *RemoteShard) Snapshot(ctx context.Context) ([]int64, []*store.Doc, error) {
	resp, err := r.callRead(ctx, OpSnapshot, nil)
	if err != nil {
		return nil, nil, err
	}
	return DecodeSnapshot(resp.Body)
}

// CreateIndex implements store.ShardBackend.
func (r *RemoteShard) CreateIndex(ctx context.Context, name, path string, kind store.IndexKind) error {
	_, err := r.callPrimary(ctx, OpCreateIndex, EncodeCreateIndex(name, path, kind))
	return err
}

// CreateTextIndex implements store.ShardBackend.
func (r *RemoteShard) CreateTextIndex(ctx context.Context, path string) error {
	var buf bytes.Buffer
	putString(&buf, path)
	_, err := r.callPrimary(ctx, OpCreateTextIndex, buf.Bytes())
	return err
}

// Info probes the primary's shard state — generation, document count,
// index manifest — without the read fence. Coordinators use it to detect
// warm nodes (recovered from their node-local WAL/checkpoint) before
// deciding whether to re-run batch ingest.
func (r *RemoteShard) Info(ctx context.Context) (ShardInfo, error) {
	resp, err := r.primary.Call(ctx, &Request{Op: OpInfo, Shard: r.key})
	if err != nil {
		return ShardInfo{}, err
	}
	if resp.Err != nil {
		return ShardInfo{}, resp.Err
	}
	r.observe(resp.Gen)
	return DecodeShardInfo(resp.Body)
}

// Checkpoint asks the hosting node to persist this shard to its local
// data directory. Nodes running without -data-dir answer unavailable
// (errors.Is(err, dterr.ErrUnavailable)).
func (r *RemoteShard) Checkpoint(ctx context.Context) error {
	resp, err := r.primary.Call(ctx, &Request{Op: OpCheckpoint, Shard: r.key})
	if err != nil {
		return err
	}
	if resp.Err != nil {
		return resp.Err
	}
	r.observe(resp.Gen)
	return nil
}

// Ping round-trips an OpPing through the primary transport.
func (r *RemoteShard) Ping(ctx context.Context) error {
	resp, err := r.primary.Call(ctx, &Request{Op: OpPing, Shard: r.key})
	if err != nil {
		return err
	}
	if resp.Err != nil {
		return resp.Err
	}
	return nil
}

func boolFromBody(body []byte) (bool, error) {
	if len(body) != 1 {
		return false, fmt.Errorf("cluster: malformed bool response (%d bytes)", len(body))
	}
	return body[0] == 1, nil
}
