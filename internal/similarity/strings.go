// Package similarity implements the string- and set-similarity measures the
// schema matcher and entity consolidator score with: edit distances, Jaro /
// Jaro-Winkler, token-set coefficients, character n-gram similarity, TF-IDF
// cosine, and the Monge-Elkan hybrid.
//
// All similarity functions return values in [0, 1] where 1 means identical.
package similarity

import (
	"strings"
	"unicode/utf8"
)

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transposition as a single operation (restricted Damerau-Levenshtein).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[la][lb]
}

// LevenshteinSim normalizes Levenshtein distance into a similarity:
// 1 - dist/max(len). Two empty strings are identical (1).
func LevenshteinSim(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix of
// up to 4 runes, with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TrigramSim is the Jaccard coefficient over character trigrams of the
// normalized inputs; short strings fall back to LevenshteinSim.
func TrigramSim(a, b string) float64 {
	if utf8.RuneCountInString(a) < 3 || utf8.RuneCountInString(b) < 3 {
		return LevenshteinSim(strings.ToLower(a), strings.ToLower(b))
	}
	return JaccardStrings(charTrigrams(a), charTrigrams(b))
}

func charTrigrams(s string) []string {
	s = strings.ToLower(s)
	runes := []rune(s)
	out := make([]string, 0, len(runes))
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, string(runes[i:i+3]))
	}
	return out
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
