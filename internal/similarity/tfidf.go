package similarity

import "math"

// Corpus accumulates document frequencies so term vectors can be weighted by
// TF-IDF. The zero value is not usable; call NewCorpus.
type Corpus struct {
	docCount int
	docFreq  map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// AddDoc registers one document's distinct terms.
func (c *Corpus) AddDoc(terms []string) {
	c.docCount++
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
}

// DocCount reports how many documents have been added.
func (c *Corpus) DocCount() int { return c.docCount }

// IDF returns the smoothed inverse document frequency of term:
// ln(1 + N / (1 + df)).
func (c *Corpus) IDF(term string) float64 {
	return math.Log(1 + float64(c.docCount)/float64(1+c.docFreq[term]))
}

// Vector builds the TF-IDF vector of terms under this corpus.
func (c *Corpus) Vector(terms []string) map[string]float64 {
	tf := make(map[string]float64, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	for t, f := range tf {
		tf[t] = f * c.IDF(t)
	}
	return tf
}

// Cosine returns the cosine similarity of two sparse vectors.
func Cosine(a, b map[string]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	var dot, na, nb float64
	for t, w := range a {
		na += w * w
		if w2, ok := b[t]; ok {
			dot += w * w2
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// TFIDFCosine is the cosine of the two term lists' TF-IDF vectors under the
// corpus.
func (c *Corpus) TFIDFCosine(a, b []string) float64 {
	return Cosine(c.Vector(a), c.Vector(b))
}

// SoftTFIDF computes the Cohen et al. SoftTFIDF measure: TF-IDF cosine where
// terms match softly when inner(x, y) >= theta, taking the best-matching
// partner's weight.
func (c *Corpus) SoftTFIDF(a, b []string, inner func(x, y string) float64, theta float64) float64 {
	va, vb := c.Vector(a), c.Vector(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	var na, nb float64
	for _, w := range va {
		na += w * w
	}
	for _, w := range vb {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	for x, wx := range va {
		bestSim, bestW := 0.0, 0.0
		for y, wy := range vb {
			if s := inner(x, y); s >= theta && s > bestSim {
				bestSim, bestW = s, wy
			}
		}
		if bestSim > 0 {
			dot += wx * bestW * bestSim
		}
	}
	score := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if score > 1 {
		score = 1
	}
	return score
}
