package similarity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"matilda", "matilda", 0},
		{"theater", "theatre", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauTransposition(t *testing.T) {
	if got := DamerauLevenshtein("theater", "theatre"); got != 1 {
		t.Errorf("Damerau(theater,theatre) = %d, want 1", got)
	}
	if got := DamerauLevenshtein("ca", "ac"); got != 1 {
		t.Errorf("Damerau(ca,ac) = %d, want 1", got)
	}
	if got := DamerauLevenshtein("abc", "abc"); got != 0 {
		t.Errorf("Damerau identical = %d", got)
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("martha", "marhta"); math.Abs(got-0.9444) > 0.001 {
		t.Errorf("Jaro(martha,marhta) = %f", got)
	}
	if got := Jaro("dixon", "dicksonx"); math.Abs(got-0.7667) > 0.001 {
		t.Errorf("Jaro(dixon,dicksonx) = %f", got)
	}
	if Jaro("", "") != 1 {
		t.Error("Jaro empty/empty should be 1")
	}
	if Jaro("a", "") != 0 {
		t.Error("Jaro a/empty should be 0")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint should be 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611) > 0.001 {
		t.Errorf("JW(martha,marhta) = %f", got)
	}
	// Prefix boost: JW >= Jaro always.
	pairs := [][2]string{{"show", "show_name"}, {"price", "prices"}, {"theater", "theatre"}}
	for _, p := range pairs {
		if JaroWinkler(p[0], p[1]) < Jaro(p[0], p[1]) {
			t.Errorf("JW < Jaro for %v", p)
		}
	}
}

func TestSetCoefficients(t *testing.T) {
	a := []string{"broadway", "show", "schedule"}
	b := []string{"show", "schedule", "price"}
	if got := JaccardStrings(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %f", got)
	}
	if got := Dice(a, b); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("Dice = %f", got)
	}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("Overlap = %f", got)
	}
	if JaccardStrings(nil, nil) != 1 || Dice(nil, nil) != 1 {
		t.Error("empty/empty should be 1")
	}
	if Overlap([]string{"a"}, nil) != 0 {
		t.Error("overlap with empty should be 0")
	}
}

func TestTrigramSim(t *testing.T) {
	if got := TrigramSim("matilda", "matilda"); got != 1 {
		t.Errorf("identical trigram sim = %f", got)
	}
	if got := TrigramSim("ab", "ab"); got != 1 {
		t.Errorf("short identical = %f", got)
	}
	close := TrigramSim("schedule", "schedules")
	far := TrigramSim("schedule", "location")
	if close <= far {
		t.Errorf("trigram ordering wrong: close=%f far=%f", close, far)
	}
}

func TestMongeElkan(t *testing.T) {
	inner := JaroWinkler
	a := []string{"shubert", "theatre"}
	b := []string{"shubert", "theater"}
	if got := MongeElkanSym(a, b, inner); got < 0.9 {
		t.Errorf("MongeElkanSym = %f, want high", got)
	}
	if MongeElkan(nil, nil, inner) != 1 {
		t.Error("empty/empty = 1")
	}
	if MongeElkan([]string{"x"}, nil, inner) != 0 {
		t.Error("a/empty = 0")
	}
	if MongeElkan(nil, []string{"x"}, inner) != 0 {
		t.Error("empty/b = 0")
	}
}

func TestCorpusTFIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDoc([]string{"broadway", "show", "matilda"})
	c.AddDoc([]string{"broadway", "show", "wicked"})
	c.AddDoc([]string{"company", "earnings"})
	if c.DocCount() != 3 {
		t.Fatalf("DocCount = %d", c.DocCount())
	}
	// Rare term should out-weigh common term.
	if c.IDF("matilda") <= c.IDF("broadway") {
		t.Errorf("IDF(matilda)=%f <= IDF(broadway)=%f", c.IDF("matilda"), c.IDF("broadway"))
	}
	sim := c.TFIDFCosine([]string{"broadway", "show"}, []string{"broadway", "show"})
	if math.Abs(sim-1) > 1e-9 {
		t.Errorf("identical cosine = %f", sim)
	}
	dis := c.TFIDFCosine([]string{"matilda"}, []string{"earnings"})
	if dis != 0 {
		t.Errorf("disjoint cosine = %f", dis)
	}
}

func TestCosineEdge(t *testing.T) {
	if Cosine(nil, nil) != 1 {
		t.Error("empty/empty cosine = 1")
	}
	if Cosine(map[string]float64{"a": 1}, nil) != 0 {
		t.Error("vec/empty cosine = 0")
	}
}

func TestSoftTFIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDoc([]string{"shubert", "theatre"})
	c.AddDoc([]string{"broadhurst", "theatre"})
	hard := c.TFIDFCosine([]string{"shubert", "theatre"}, []string{"shubert", "theater"})
	soft := c.SoftTFIDF([]string{"shubert", "theatre"}, []string{"shubert", "theater"}, JaroWinkler, 0.9)
	if soft <= hard {
		t.Errorf("soft (%f) should exceed hard (%f) on near-miss tokens", soft, hard)
	}
	if got := c.SoftTFIDF(nil, nil, JaroWinkler, 0.9); got != 1 {
		t.Errorf("empty/empty soft = %f", got)
	}
}

// sims under test for shared property checks.
var simFuncs = map[string]func(a, b string) float64{
	"LevenshteinSim": LevenshteinSim,
	"Jaro":           Jaro,
	"JaroWinkler":    JaroWinkler,
	"TrigramSim":     TrigramSim,
}

// Property: every similarity is within [0,1], symmetric, and 1 on identity.
func TestQuickSimilarityProperties(t *testing.T) {
	for name, fn := range simFuncs {
		fn := fn
		f := func(a, b string) bool {
			// Cap input size to keep quadratic metrics fast.
			if len(a) > 40 {
				a = a[:40]
			}
			if len(b) > 40 {
				b = b[:40]
			}
			s := fn(a, b)
			if s < -1e-9 || s > 1+1e-9 {
				return false
			}
			if math.Abs(fn(a, b)-fn(b, a)) > 1e-9 {
				return false
			}
			return math.Abs(fn(a, a)-1) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Levenshtein satisfies the triangle inequality.
func TestQuickLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		if len(c) > 20 {
			c = c[:20]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Damerau distance never exceeds Levenshtein distance.
func TestQuickDamerauLeqLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaroWinkler("the walking dead", "the wolverine")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	a := strings.Repeat("broadway show ", 3)
	c := strings.Repeat("broadway shows ", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(a, c)
	}
}
