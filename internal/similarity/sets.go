package similarity

// toSet builds a set from a token slice.
func toSet(tokens []string) map[string]bool {
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	return set
}

func intersectionSize(a, b map[string]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for t := range a {
		if b[t] {
			n++
		}
	}
	return n
}

// JaccardStrings is |A ∩ B| / |A ∪ B| over the token sets. Two empty sets
// are identical (1).
func JaccardStrings(a, b []string) float64 {
	sa, sb := toSet(a), toSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := intersectionSize(sa, sb)
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice is 2|A ∩ B| / (|A| + |B|).
func Dice(a, b []string) float64 {
	sa, sb := toSet(a), toSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	denom := len(sa) + len(sb)
	if denom == 0 {
		return 1
	}
	return 2 * float64(intersectionSize(sa, sb)) / float64(denom)
}

// Overlap is |A ∩ B| / min(|A|, |B|), the containment coefficient.
func Overlap(a, b []string) float64 {
	sa, sb := toSet(a), toSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	m := len(sa)
	if len(sb) < m {
		m = len(sb)
	}
	if m == 0 {
		return 0
	}
	return float64(intersectionSize(sa, sb)) / float64(m)
}

// MongeElkan computes the asymmetric Monge-Elkan score: the mean over tokens
// of a of the best inner similarity against tokens of b. Symmetrize with
// MongeElkanSym when needed.
func MongeElkan(a, b []string, inner func(x, y string) float64) float64 {
	if len(a) == 0 {
		if len(b) == 0 {
			return 1
		}
		return 0
	}
	var total float64
	for _, x := range a {
		best := 0.0
		for _, y := range b {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// MongeElkanSym is the mean of the two asymmetric Monge-Elkan directions.
func MongeElkanSym(a, b []string, inner func(x, y string) float64) float64 {
	return (MongeElkan(a, b, inner) + MongeElkan(b, a, inner)) / 2
}
