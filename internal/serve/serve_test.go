package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		tm := core.New(core.Config{Fragments: 300, FTSources: 5, Seed: 6})
		if srvErr = tm.Run(); srvErr == nil {
			srv = New(tm)
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			body = nil
		}
	}
	return rec, body
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	inst, ok := body["instance"].(map[string]any)
	if !ok {
		t.Fatalf("body = %v", body)
	}
	if inst["Count"].(float64) != 300 {
		t.Errorf("instance count = %v", inst["Count"])
	}
	ent := body["entity"].(map[string]any)
	if ent["NIndexes"].(float64) != 8 {
		t.Errorf("entity indexes = %v", ent["NIndexes"])
	}
}

func TestTypesEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/types", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Errorf("type rows = %d", len(rows))
	}
}

func TestTopEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("top rows = %d", len(rows))
	}
}

func TestShowEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show?name=Matilda")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	web := body["web_text"].(map[string]any)
	fused := body["fused"].(map[string]any)
	if web["SHOW_NAME"] != "Matilda" {
		t.Errorf("web view = %v", web)
	}
	if _, ok := web["THEATER"]; ok {
		t.Error("web view should not carry THEATER")
	}
	if fused["THEATER"] == "" || fused["CHEAPEST_PRICE"] != "$27" {
		t.Errorf("fused view = %v", fused)
	}
}

func TestShowEndpointMissingName(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show")
	if rec.Code != http.StatusBadRequest || body["error"] == "" {
		t.Errorf("status = %d body = %v", rec.Code, body)
	}
}

func TestFindEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/find?q="+strings.ReplaceAll("type = Movie AND name ~ walking", " ", "%20")+"&limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	total := int(body["total"].(float64))
	entities := body["entities"].([]any)
	if total < 2 || len(entities) != 2 {
		t.Errorf("total = %d shown = %d", total, len(entities))
	}
}

func TestFindEndpointErrors(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/find")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", rec.Code)
	}
	rec, _ = get(t, s, "/find?q=%3D%3D%3D")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad expr status = %d", rec.Code)
	}
}

func TestCheapestEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/cheapest?k=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("cheapest rows = %d", len(rows))
	}
	if rows[0]["Price"].(float64) > rows[1]["Price"].(float64) {
		t.Errorf("not sorted ascending: %v", rows)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestBadIntParamFallsBack(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=banana", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 10 {
		t.Errorf("fallback k rows = %d", len(rows))
	}
}
