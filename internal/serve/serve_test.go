package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/dterr"
	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/live"
)

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		tm := core.New(core.Config{Fragments: 300, FTSources: 5, Seed: 6})
		if srvErr = tm.Run(context.Background()); srvErr == nil {
			srv = New(tm)
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			body = nil
		}
	}
	return rec, body
}

// ---- legacy shim parity (the pre-/v1 tests, kept verbatim in behavior) --

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	inst, ok := body["instance"].(map[string]any)
	if !ok {
		t.Fatalf("body = %v", body)
	}
	if inst["Count"].(float64) != 300 {
		t.Errorf("instance count = %v", inst["Count"])
	}
	ent := body["entity"].(map[string]any)
	if ent["NIndexes"].(float64) != 8 {
		t.Errorf("entity indexes = %v", ent["NIndexes"])
	}
}

func TestTypesEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/types", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Errorf("type rows = %d", len(rows))
	}
}

func TestTopEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("top rows = %d", len(rows))
	}
}

func TestShowEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show?name=Matilda")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	web := body["web_text"].(map[string]any)
	fused := body["fused"].(map[string]any)
	if web["SHOW_NAME"] != "Matilda" {
		t.Errorf("web view = %v", web)
	}
	if _, ok := web["THEATER"]; ok {
		t.Error("web view should not carry THEATER")
	}
	if fused["THEATER"] == "" || fused["CHEAPEST_PRICE"] != "$27" {
		t.Errorf("fused view = %v", fused)
	}
}

func TestShowEndpointMissingName(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show")
	if rec.Code != http.StatusBadRequest || body["error"] == "" {
		t.Errorf("status = %d body = %v", rec.Code, body)
	}
}

func TestFindEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/find?q="+strings.ReplaceAll("type = Movie AND name ~ walking", " ", "%20")+"&limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	total := int(body["total"].(float64))
	entities := body["entities"].([]any)
	if total < 2 || len(entities) != 2 {
		t.Errorf("total = %d shown = %d", total, len(entities))
	}
}

func TestFindEndpointErrors(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/find")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", rec.Code)
	}
	rec, _ = get(t, s, "/find?q=%3D%3D%3D")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad expr status = %d", rec.Code)
	}
}

func TestCheapestEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/cheapest?k=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("cheapest rows = %d", len(rows))
	}
	if rows[0]["Price"].(float64) > rows[1]["Price"].(float64) {
		t.Errorf("not sorted ascending: %v", rows)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestBadIntParamFallsBack(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=banana", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 10 {
		t.Errorf("fallback k rows = %d", len(rows))
	}
}

func TestLegacyRoutesCarryDeprecationHeader(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/stats")
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/v1/stats") {
		t.Errorf("legacy route Link = %q", link)
	}
	rec, _ = get(t, s, "/v1/stats")
	if rec.Header().Get("Deprecation") != "" {
		t.Error("/v1 route must not be marked deprecated")
	}
}

// ---- /v1 surface --------------------------------------------------------

// v1Get fetches path and splits the envelope.
func v1Get(t *testing.T, s *Server, path string) (code int, data map[string]any, errBody map[string]any) {
	t.Helper()
	rec, body := get(t, s, path)
	if body == nil {
		t.Fatalf("GET %s: no JSON body (status %d): %s", path, rec.Code, rec.Body)
	}
	data, _ = body["data"].(map[string]any)
	errBody, _ = body["error"].(map[string]any)
	return rec.Code, data, errBody
}

func TestV1EnvelopeShape(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if _, ok := body["data"]; !ok {
		t.Fatalf("success response missing data envelope: %v", body)
	}
	if _, ok := body["error"]; ok {
		t.Errorf("success response carries error member: %v", body)
	}
	data := body["data"].(map[string]any)
	inst := data["instance"].(map[string]any)
	if inst["Count"].(float64) != 300 {
		t.Errorf("instance count = %v", inst["Count"])
	}

	// Error responses carry only the error member, with code and message.
	rec, body = get(t, s, "/v1/show")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("error status = %d", rec.Code)
	}
	if _, ok := body["data"]; ok {
		t.Errorf("error response carries data member: %v", body)
	}
	errBody := body["error"].(map[string]any)
	if errBody["code"] != "invalid_argument" || errBody["message"] == "" {
		t.Errorf("error body = %v", errBody)
	}
}

func TestV1TopPagination(t *testing.T) {
	s := testServer(t)
	code, data, _ := v1Get(t, s, "/v1/top?limit=3")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	items := data["items"].([]any)
	total := int(data["total"].(float64))
	if len(items) != 3 || total < 3 {
		t.Fatalf("items = %d, total = %d", len(items), total)
	}
	if int(data["limit"].(float64)) != 3 || int(data["offset"].(float64)) != 0 {
		t.Errorf("echoed window = %v/%v", data["limit"], data["offset"])
	}

	// Second page, no overlap with the first.
	_, data2, _ := v1Get(t, s, "/v1/top?limit=3&offset=3")
	items2 := data2["items"].([]any)
	if int(data2["total"].(float64)) != total {
		t.Errorf("total changed across pages: %v", data2["total"])
	}
	if len(items2) > 0 {
		first := items[0].(map[string]any)["Name"]
		second := items2[0].(map[string]any)["Name"]
		if first == second {
			t.Errorf("pages overlap: %v", first)
		}
	}
}

func TestV1PaginationEdges(t *testing.T) {
	s := testServer(t)
	// limit=0 is an explicit empty page; total still reported.
	code, data, _ := v1Get(t, s, "/v1/types?limit=0")
	if code != http.StatusOK {
		t.Fatalf("limit=0 status = %d", code)
	}
	if items := data["items"].([]any); len(items) != 0 {
		t.Errorf("limit=0 items = %d", len(items))
	}
	if total := int(data["total"].(float64)); total < 10 {
		t.Errorf("limit=0 total = %d", total)
	}

	// Offset past the end: empty page, true total, echoed (clamped) offset.
	code, data, _ = v1Get(t, s, "/v1/types?limit=5&offset=100000")
	if code != http.StatusOK {
		t.Fatalf("offset-past-end status = %d", code)
	}
	if items := data["items"].([]any); len(items) != 0 {
		t.Errorf("offset-past-end items = %d", len(items))
	}
	if total := int(data["total"].(float64)); total < 10 {
		t.Errorf("offset-past-end total = %d", total)
	}
}

func TestV1StrictIntParams(t *testing.T) {
	s := testServer(t)
	// Regression: the legacy intParam silently swallowed malformed values;
	// /v1 must reject them as invalid_argument.
	for _, path := range []string{
		"/v1/top?limit=banana",
		"/v1/top?offset=banana",
		"/v1/types?limit=-3",
		"/v1/cheapest?offset=1.5",
		"/v1/find?q=type%20%3D%20Movie&limit=banana",
		"/v1/top?limit=99999999",
	} {
		code, _, errBody := v1Get(t, s, path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
			continue
		}
		if errBody["code"] != "invalid_argument" {
			t.Errorf("GET %s error code = %v", path, errBody["code"])
		}
	}
}

func TestV1ShowFoundAndNotFound(t *testing.T) {
	s := testServer(t)
	code, data, _ := v1Get(t, s, "/v1/show?name=Matilda")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	fused := data["fused"].(map[string]any)
	if fused["CHEAPEST_PRICE"] != "$27" {
		t.Errorf("fused = %v", fused)
	}

	code, _, errBody := v1Get(t, s, "/v1/show?name=Zz+Totally+Unknown+Zz")
	if code != http.StatusNotFound {
		t.Fatalf("unknown show status = %d", code)
	}
	if errBody["code"] != "not_found" {
		t.Errorf("unknown show code = %v", errBody["code"])
	}
}

func TestV1FindPaginatesWithTotal(t *testing.T) {
	s := testServer(t)
	code, data, _ := v1Get(t, s, "/v1/find?q=type%20%3D%20Movie&limit=2")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if items := data["items"].([]any); len(items) != 2 {
		t.Errorf("items = %d", len(items))
	}
	if total := int(data["total"].(float64)); total <= 2 {
		t.Errorf("total = %d", total)
	}

	code, _, errBody := v1Get(t, s, "/v1/find?q=%3D%3D%3D")
	if code != http.StatusBadRequest || errBody["code"] != "invalid_argument" {
		t.Errorf("malformed filter: %d %v", code, errBody)
	}
}

func TestV1WriteEndpointsUnavailableInBatchMode(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/v1/ingest/text", "/v1/ingest/records", "/v1/flush"} {
		rec, body := post(t, s, path, "{}")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("POST %s = %d, want 503", path, rec.Code)
			continue
		}
		errBody := body["error"].(map[string]any)
		if errBody["code"] != "unavailable" {
			t.Errorf("POST %s code = %v", path, errBody["code"])
		}
	}
	code, _, errBody := v1Get(t, s, "/v1/live/stats")
	if code != http.StatusServiceUnavailable || errBody["code"] != "unavailable" {
		t.Errorf("GET /v1/live/stats = %d %v", code, errBody)
	}
}

func TestV1RequestContextCancellation(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the handler runs
	req := httptest.NewRequest(http.MethodGet, "/v1/top", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("cancelled request status = %d, want 499", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	errBody := body["error"].(map[string]any)
	if errBody["code"] != "canceled" {
		t.Errorf("cancelled request code = %v", errBody["code"])
	}
}

// failingQuerier exercises the typed-error→status mapping for classes the
// real pipeline rarely produces on demand.
type failingQuerier struct {
	Querier
	err error
}

func (f failingQuerier) TopDiscussed(context.Context, int) ([]fuse.Discussed, error) {
	return nil, f.err
}

func TestV1TypedErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{dterr.ErrInvalidArgument, http.StatusBadRequest, "invalid_argument"},
		{dterr.ErrNotFound, http.StatusNotFound, "not_found"},
		{dterr.ErrBusy, http.StatusTooManyRequests, "busy"},
		{dterr.ErrClosed, http.StatusServiceUnavailable, "closed"},
		{dterr.ErrUnavailable, http.StatusServiceUnavailable, "unavailable"},
		{dterr.ErrDeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
		{errors.New("plain failure"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		s := New(failingQuerier{err: c.err})
		rec, body := get(t, s, "/v1/top")
		if rec.Code != c.wantStatus {
			t.Errorf("%v: status = %d, want %d", c.err, rec.Code, c.wantStatus)
			continue
		}
		errBody := body["error"].(map[string]any)
		if errBody["code"] != c.wantCode {
			t.Errorf("%v: code = %v, want %s", c.err, errBody["code"], c.wantCode)
		}
	}
}

// ---- write endpoints (live mode) ----------------------------------------

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			out = nil
		}
	}
	return rec, out
}

// liveServer builds a fresh live-mode server; not shared, since write tests
// mutate pipeline state.
func liveServer(t *testing.T) (*Server, *live.Ingester) {
	t.Helper()
	tm := core.New(core.Config{Fragments: 150, FTSources: 3, Shards: 2, Seed: 11})
	if err := tm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ing, err := live.Open(context.Background(), tm, live.Config{Dir: t.TempDir(), BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	return NewLive(tm, ing), ing
}

func TestWriteEndpointsUnavailableInBatchMode(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/ingest/text", "/ingest/records", "/flush"} {
		rec, _ := post(t, s, path, "{}")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("POST %s in batch mode = %d, want 503", path, rec.Code)
		}
	}
	rec, _ := get(t, s, "/live/stats")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /live/stats in batch mode = %d, want 503", rec.Code)
	}
}

func TestIngestTextEndpoint(t *testing.T) {
	s, _ := liveServer(t)
	rec, body := post(t, s, "/ingest/text",
		`{"fragments":[{"url":"http://x/1","text":"Matilda grossed 960,998 this week."},
		               {"url":"http://x/2","text":"Once previews began on Tuesday."}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if body["accepted"].(float64) != 2 {
		t.Errorf("accepted = %v", body["accepted"])
	}
	if rec, _ := post(t, s, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush status = %d", rec.Code)
	}
	rec, body = get(t, s, "/live/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("live stats status = %d", rec.Code)
	}
	if body["fragments_ingested"].(float64) != 2 {
		t.Errorf("fragments_ingested = %v", body["fragments_ingested"])
	}
	if body["pending_events"].(float64) != 0 {
		t.Errorf("pending_events = %v", body["pending_events"])
	}
	if body["wal_size_bytes"].(float64) <= 0 {
		t.Errorf("wal_size_bytes = %v", body["wal_size_bytes"])
	}
}

func TestIngestRecordsEndpointReflectedInShowQuery(t *testing.T) {
	s, _ := liveServer(t)
	rec, _ := post(t, s, "/ingest/records",
		`{"source":"api_feed","records":[{"SHOW_NAME":"Velvet Meridian","THEATER":"Orpheum","CHEAPEST_PRICE":66}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if rec, _ := post(t, s, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush status = %d", rec.Code)
	}
	rec, body := get(t, s, "/show?name=Velvet+Meridian")
	if rec.Code != http.StatusOK {
		t.Fatalf("show status = %d", rec.Code)
	}
	fused, ok := body["fused"].(map[string]any)
	if !ok || fused["THEATER"] != "Orpheum" {
		t.Errorf("fused view = %v", body["fused"])
	}
}

func TestV1IngestAndQueryRoundTrip(t *testing.T) {
	s, _ := liveServer(t)
	rec, body := post(t, s, "/v1/ingest/records",
		`{"source":"api_feed","records":[{"SHOW_NAME":"Copper Skyline","THEATER":"Majestic","CHEAPEST_PRICE":58}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	data := body["data"].(map[string]any)
	if data["accepted"].(float64) != 1 {
		t.Errorf("accepted = %v", data["accepted"])
	}
	if rec, _ := post(t, s, "/v1/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("v1 flush status = %d", rec.Code)
	}
	code, data, _ := v1Get(t, s, "/v1/show?name=Copper+Skyline")
	if code != http.StatusOK {
		t.Fatalf("v1 show status = %d", code)
	}
	fused := data["fused"].(map[string]any)
	if fused["THEATER"] != "Majestic" {
		t.Errorf("fused = %v", fused)
	}
	code, data, _ = v1Get(t, s, "/v1/live/stats")
	if code != http.StatusOK {
		t.Fatalf("v1 live stats = %d", code)
	}
	if data["records_ingested"].(float64) != 1 {
		t.Errorf("records_ingested = %v", data["records_ingested"])
	}
}

func TestV1ShowFoundWhenFusedRecordAddsNoFields(t *testing.T) {
	// Regression: the 404 check must be an existence test, not a
	// field-count diff — a fused record carrying only SHOW_NAME (no
	// enrichment beyond the web-text fallback) is still a known show.
	s, _ := liveServer(t)
	rec, _ := post(t, s, "/v1/ingest/records",
		`{"source":"sparse_feed","records":[{"SHOW_NAME":"Bare Minimum"}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec, _ := post(t, s, "/v1/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush = %d", rec.Code)
	}
	code, data, errBody := v1Get(t, s, "/v1/show?name=Bare+Minimum")
	if code != http.StatusOK {
		t.Fatalf("sparse fused show = %d (%v), want 200", code, errBody)
	}
	if data["fused"].(map[string]any)["SHOW_NAME"] != "Bare Minimum" {
		t.Errorf("fused view = %v", data["fused"])
	}
}

func TestV1IngestBadRequests(t *testing.T) {
	s, _ := liveServer(t)
	cases := []struct{ path, body string }{
		{"/v1/ingest/text", `not json`},
		{"/v1/ingest/text", `{"fragments":[]}`},
		{"/v1/ingest/text", `{"fragments":[{"url":"http://x","text":""}]}`},
		{"/v1/ingest/records", `{"records":[{"A":1}]}`},
		{"/v1/ingest/records", `{"source":"s","records":[]}`},
		{"/v1/ingest/records", `{"source":"s","records":[{"A":{"nested":true}}]}`},
	}
	for _, c := range cases {
		rec, body := post(t, s, c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d, want 400", c.path, c.body, rec.Code)
			continue
		}
		errBody := body["error"].(map[string]any)
		if errBody["code"] != "invalid_argument" {
			t.Errorf("POST %s code = %v", c.path, errBody["code"])
		}
	}
	// Malformed checkpoint parameter is invalid_argument on /v1 (the
	// legacy shim silently treats it as false).
	rec, body := post(t, s, "/v1/flush?checkpoint=banana", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("v1 flush bad checkpoint = %d", rec.Code)
	} else if body["error"].(map[string]any)["code"] != "invalid_argument" {
		t.Errorf("v1 flush bad checkpoint body = %v", body)
	}
}

func TestIngestEndpointBadRequests(t *testing.T) {
	s, _ := liveServer(t)
	cases := []struct{ path, body string }{
		{"/ingest/text", `not json`},
		{"/ingest/text", `{"fragments":[]}`},
		{"/ingest/text", `{"fragments":[{"url":"http://x","text":""}]}`},
		{"/ingest/records", `{"records":[{"A":1}]}`},
		{"/ingest/records", `{"source":"s","records":[]}`},
		{"/ingest/records", `{"source":"s","records":[{"A":{"nested":true}}]}`},
	}
	for _, c := range cases {
		if rec, _ := post(t, s, c.path, c.body); rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d, want 400", c.path, c.body, rec.Code)
		}
	}
}

func TestFlushCheckpointEndpoint(t *testing.T) {
	s, ing := liveServer(t)
	if rec, _ := post(t, s, "/ingest/text", `{"fragments":[{"url":"http://x/1","text":"Annie opened."}]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d", rec.Code)
	}
	rec, body := post(t, s, "/flush?checkpoint=1", "")
	if rec.Code != http.StatusOK || body["status"] != "checkpoint complete" {
		t.Fatalf("checkpoint flush = %d %v", rec.Code, body)
	}
	if size := ing.Stats().WALSizeBytes; size > 16 {
		t.Errorf("wal not truncated after checkpoint: %d bytes", size)
	}
}

// Interface conformance beyond the concrete pipeline: the server must be
// constructible from any Querier implementation (this is what keeps serve
// decoupled from *core.Tamer).
var _ Querier = failingQuerier{}
