package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
)

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		tm := core.New(core.Config{Fragments: 300, FTSources: 5, Seed: 6})
		if srvErr = tm.Run(); srvErr == nil {
			srv = New(tm)
		}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			body = nil
		}
	}
	return rec, body
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	inst, ok := body["instance"].(map[string]any)
	if !ok {
		t.Fatalf("body = %v", body)
	}
	if inst["Count"].(float64) != 300 {
		t.Errorf("instance count = %v", inst["Count"])
	}
	ent := body["entity"].(map[string]any)
	if ent["NIndexes"].(float64) != 8 {
		t.Errorf("entity indexes = %v", ent["NIndexes"])
	}
}

func TestTypesEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/types", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Errorf("type rows = %d", len(rows))
	}
}

func TestTopEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("top rows = %d", len(rows))
	}
}

func TestShowEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show?name=Matilda")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	web := body["web_text"].(map[string]any)
	fused := body["fused"].(map[string]any)
	if web["SHOW_NAME"] != "Matilda" {
		t.Errorf("web view = %v", web)
	}
	if _, ok := web["THEATER"]; ok {
		t.Error("web view should not carry THEATER")
	}
	if fused["THEATER"] == "" || fused["CHEAPEST_PRICE"] != "$27" {
		t.Errorf("fused view = %v", fused)
	}
}

func TestShowEndpointMissingName(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/show")
	if rec.Code != http.StatusBadRequest || body["error"] == "" {
		t.Errorf("status = %d body = %v", rec.Code, body)
	}
}

func TestFindEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/find?q="+strings.ReplaceAll("type = Movie AND name ~ walking", " ", "%20")+"&limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	total := int(body["total"].(float64))
	entities := body["entities"].([]any)
	if total < 2 || len(entities) != 2 {
		t.Errorf("total = %d shown = %d", total, len(entities))
	}
}

func TestFindEndpointErrors(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/find")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", rec.Code)
	}
	rec, _ = get(t, s, "/find?q=%3D%3D%3D")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad expr status = %d", rec.Code)
	}
}

func TestCheapestEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/cheapest?k=2", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("cheapest rows = %d", len(rows))
	}
	if rows[0]["Price"].(float64) > rows[1]["Price"].(float64) {
		t.Errorf("not sorted ascending: %v", rows)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestBadIntParamFallsBack(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/top?k=banana", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 10 {
		t.Errorf("fallback k rows = %d", len(rows))
	}
}

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			out = nil
		}
	}
	return rec, out
}

// liveServer builds a fresh live-mode server; not shared, since write tests
// mutate pipeline state.
func liveServer(t *testing.T) (*Server, *live.Ingester) {
	t.Helper()
	tm := core.New(core.Config{Fragments: 150, FTSources: 3, Shards: 2, Seed: 11})
	if err := tm.Run(); err != nil {
		t.Fatal(err)
	}
	ing, err := live.Open(tm, live.Config{Dir: t.TempDir(), BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	return NewLive(tm, ing), ing
}

func TestWriteEndpointsUnavailableInBatchMode(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/ingest/text", "/ingest/records", "/flush"} {
		rec, _ := post(t, s, path, "{}")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("POST %s in batch mode = %d, want 503", path, rec.Code)
		}
	}
	rec, _ := get(t, s, "/live/stats")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /live/stats in batch mode = %d, want 503", rec.Code)
	}
}

func TestIngestTextEndpoint(t *testing.T) {
	s, _ := liveServer(t)
	rec, body := post(t, s, "/ingest/text",
		`{"fragments":[{"url":"http://x/1","text":"Matilda grossed 960,998 this week."},
		               {"url":"http://x/2","text":"Once previews began on Tuesday."}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if body["accepted"].(float64) != 2 {
		t.Errorf("accepted = %v", body["accepted"])
	}
	if rec, _ := post(t, s, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush status = %d", rec.Code)
	}
	rec, body = get(t, s, "/live/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("live stats status = %d", rec.Code)
	}
	if body["fragments_ingested"].(float64) != 2 {
		t.Errorf("fragments_ingested = %v", body["fragments_ingested"])
	}
	if body["pending_events"].(float64) != 0 {
		t.Errorf("pending_events = %v", body["pending_events"])
	}
	if body["wal_size_bytes"].(float64) <= 0 {
		t.Errorf("wal_size_bytes = %v", body["wal_size_bytes"])
	}
}

func TestIngestRecordsEndpointReflectedInShowQuery(t *testing.T) {
	s, _ := liveServer(t)
	rec, _ := post(t, s, "/ingest/records",
		`{"source":"api_feed","records":[{"SHOW_NAME":"Velvet Meridian","THEATER":"Orpheum","CHEAPEST_PRICE":66}]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if rec, _ := post(t, s, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush status = %d", rec.Code)
	}
	rec, body := get(t, s, "/show?name=Velvet+Meridian")
	if rec.Code != http.StatusOK {
		t.Fatalf("show status = %d", rec.Code)
	}
	fused, ok := body["fused"].(map[string]any)
	if !ok || fused["THEATER"] != "Orpheum" {
		t.Errorf("fused view = %v", body["fused"])
	}
}

func TestIngestEndpointBadRequests(t *testing.T) {
	s, _ := liveServer(t)
	cases := []struct{ path, body string }{
		{"/ingest/text", `not json`},
		{"/ingest/text", `{"fragments":[]}`},
		{"/ingest/text", `{"fragments":[{"url":"http://x","text":""}]}`},
		{"/ingest/records", `{"records":[{"A":1}]}`},
		{"/ingest/records", `{"source":"s","records":[]}`},
		{"/ingest/records", `{"source":"s","records":[{"A":{"nested":true}}]}`},
	}
	for _, c := range cases {
		if rec, _ := post(t, s, c.path, c.body); rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d, want 400", c.path, c.body, rec.Code)
		}
	}
}

func TestFlushCheckpointEndpoint(t *testing.T) {
	s, ing := liveServer(t)
	if rec, _ := post(t, s, "/ingest/text", `{"fragments":[{"url":"http://x/1","text":"Annie opened."}]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d", rec.Code)
	}
	rec, body := post(t, s, "/flush?checkpoint=1", "")
	if rec.Code != http.StatusOK || body["status"] != "checkpoint complete" {
		t.Fatalf("checkpoint flush = %d %v", rec.Code, body)
	}
	if size := ing.Stats().WALSizeBytes; size > 16 {
		t.Errorf("wal not truncated after checkpoint: %d bytes", size)
	}
}
