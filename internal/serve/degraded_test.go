package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"

	"repro/dterr"
	"repro/internal/fuse"
	"repro/internal/store"
)

// partialQuerier simulates a fan-out read over a cluster with missing
// shards: it absorbs `missing` shard failures into the request's partial
// tracker when one is installed, and fails outright (the strict path)
// when it is not.
type partialQuerier struct {
	Querier
	mu      sync.Mutex
	missing int
}

func (p *partialQuerier) setMissing(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.missing = n
}

func (p *partialQuerier) TopDiscussed(ctx context.Context, _ int) ([]fuse.Discussed, error) {
	p.mu.Lock()
	n := p.missing
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		if !store.AbsorbShardError(ctx, "dt.entity", i, dterr.ErrBusy) {
			return nil, dterr.ErrBusy
		}
	}
	return []fuse.Discussed{{Name: "Matilda", Mentions: 7}}, nil
}

func TestV1DegradedRead(t *testing.T) {
	q := &partialQuerier{missing: 2}
	s := New(q)

	rec, body := get(t, s, "/v1/top")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded read status = %d, want 200: %v", rec.Code, body)
	}
	if got := rec.Header().Get("X-DT-Degraded"); got != "shards_missing=2" {
		t.Fatalf("X-DT-Degraded = %q, want shards_missing=2", got)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store on a partial body", cc)
	}
	deg, ok := body["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("degraded envelope field missing: %v", body)
	}
	if deg["shards_missing"] != float64(2) {
		t.Fatalf("degraded.shards_missing = %v, want 2", deg["shards_missing"])
	}
	if body["data"] == nil {
		t.Fatal("degraded response dropped its partial data")
	}
}

func TestV1DegradedStrictOptOut(t *testing.T) {
	q := &partialQuerier{missing: 1}
	s := New(q)

	// ?partial=0 restores whole-or-nothing: no tracker installed, the
	// shard failure propagates, and the busy taxonomy maps to 429.
	rec, body := get(t, s, "/v1/top?partial=0")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("strict read status = %d, want 429: %v", rec.Code, body)
	}
	if rec.Header().Get("X-DT-Degraded") != "" {
		t.Fatal("strict failure carried a degraded header")
	}

	// A malformed partial parameter is a client error, not a silent default.
	if rec, _ := get(t, s, "/v1/top?partial=maybe"); rec.Code != http.StatusBadRequest {
		t.Fatalf("partial=maybe status = %d, want 400", rec.Code)
	}
}

func TestV1CompleteReadHasNoDegradedField(t *testing.T) {
	q := &partialQuerier{}
	s := New(q)
	rec, body := get(t, s, "/v1/top")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if _, present := body["degraded"]; present {
		t.Fatalf("complete response carries a degraded field: %v", body)
	}
	if rec.Header().Get("X-DT-Degraded") != "" {
		t.Fatal("complete response carries the degraded header")
	}
}

// TestDegradedResponseNotCached: with the generation-keyed response
// cache enabled, a degraded (partial) body must not be stored — the
// generation does not bump when a node heals, so a cached hole would be
// served forever.
func TestDegradedResponseNotCached(t *testing.T) {
	q := &partialQuerier{missing: 3}
	s := New(q, WithGeneration(func() uint64 { return 1 }), WithCacheBytes(1<<20))

	rec, _ := get(t, s, "/v1/top")
	if rec.Code != http.StatusOK || rec.Header().Get("X-DT-Degraded") == "" {
		t.Fatalf("degraded read = %d, header %q", rec.Code, rec.Header().Get("X-DT-Degraded"))
	}
	if rec.Header().Get("ETag") != "" {
		t.Fatalf("degraded response carries ETag %q; clients would revalidate a hole forever", rec.Header().Get("ETag"))
	}

	// The shards "heal"; the same URL at the same generation must now be
	// recomputed (a MISS, not a HIT on the partial body).
	q.setMissing(0)
	rec2, body := get(t, s, "/v1/top")
	if rec2.Code != http.StatusOK {
		t.Fatalf("healed read = %d", rec2.Code)
	}
	if rec2.Header().Get("X-Cache") == "HIT" {
		t.Fatal("healed read served from cache — the degraded body was stored")
	}
	if _, present := body["degraded"]; present {
		t.Fatalf("healed read still degraded: %v", body)
	}
	if rec2.Header().Get("ETag") == "" {
		t.Fatal("healed complete response lost its ETag")
	}

	// And the complete body IS cached: third request is a HIT.
	rec3, _ := get(t, s, "/v1/top")
	if rec3.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("complete response not cached (X-Cache = %q)", rec3.Header().Get("X-Cache"))
	}
}
