package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/record"
)

// newTamer builds a small batch-mode pipeline for middleware tests that
// need their own instance (the shared testServer has no cache).
func newTamer(t *testing.T) *core.Tamer {
	t.Helper()
	tm := core.New(core.Config{Fragments: 300, FTSources: 5, Seed: 6})
	if err := tm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return tm
}

func getWithHeaders(t *testing.T, s *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestCachedResponsesByteIdentical is the cache-correctness contract: for
// every cacheable /v1 route (pagination parameters included), the
// envelope a cache-enabled server returns — on the miss AND on the hit —
// is byte-identical to what a cache-free server computes.
func TestCachedResponsesByteIdentical(t *testing.T) {
	tm := newTamer(t)
	plain := New(tm)
	cached := New(tm, WithGeneration(tm.DataGeneration), WithMetrics(obs.NewRegistry()))

	paths := []string{
		"/v1/stats",
		"/v1/types?limit=3",
		"/v1/types?limit=3&offset=1", // distinct page → distinct cache entry
		"/v1/top?limit=5",
		"/v1/cheapest?limit=2",
		"/v1/find?q=type+%3D+Movie&limit=4",
		"/v1/show?name=Matilda",
	}
	bodies := make(map[string][]byte)
	for _, path := range paths {
		want := getWithHeaders(t, plain, path, nil)
		if want.Code != http.StatusOK {
			t.Fatalf("GET %s uncached = %d", path, want.Code)
		}
		miss := getWithHeaders(t, cached, path, nil)
		if miss.Code != http.StatusOK || miss.Header().Get("X-Cache") != "MISS" {
			t.Fatalf("GET %s first = %d X-Cache=%q, want 200 MISS", path, miss.Code, miss.Header().Get("X-Cache"))
		}
		hit := getWithHeaders(t, cached, path, nil)
		if hit.Code != http.StatusOK || hit.Header().Get("X-Cache") != "HIT" {
			t.Fatalf("GET %s second = %d X-Cache=%q, want 200 HIT", path, hit.Code, hit.Header().Get("X-Cache"))
		}
		if !bytes.Equal(want.Body.Bytes(), miss.Body.Bytes()) {
			t.Errorf("GET %s: miss body differs from uncached body", path)
		}
		if !bytes.Equal(want.Body.Bytes(), hit.Body.Bytes()) {
			t.Errorf("GET %s: cached body differs from uncached body", path)
		}
		if hit.Header().Get("ETag") == "" {
			t.Errorf("GET %s: no ETag on cached response", path)
		}
		bodies[path] = want.Body.Bytes()
	}
	if bytes.Equal(bodies["/v1/types?limit=3"], bodies["/v1/types?limit=3&offset=1"]) {
		t.Error("offset=0 and offset=1 pages are identical; pagination params not in the cache key?")
	}
}

// TestConditionalGetStaleAfterBatchApply is the satellite regression: a
// write through the batch ApplyRecords path (no live ingester anywhere)
// must bump the generation, so a client revalidating with its pre-write
// ETag gets fresh bytes, never a stale 304.
func TestConditionalGetStaleAfterBatchApply(t *testing.T) {
	tm := newTamer(t)
	s := New(tm, WithGeneration(tm.DataGeneration), WithMetrics(obs.NewRegistry()))

	first := getWithHeaders(t, s, "/v1/cheapest?limit=5", nil)
	etag := first.Header().Get("ETag")
	if first.Code != http.StatusOK || etag == "" {
		t.Fatalf("prime GET = %d, ETag %q", first.Code, etag)
	}
	if rec := getWithHeaders(t, s, "/v1/cheapest?limit=5", map[string]string{"If-None-Match": etag}); rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation before write = %d, want 304", rec.Code)
	}

	rec := record.New()
	rec.Set("SHOW_NAME", record.String("Zyxxaq Cascade"))
	rec.Set("CHEAPEST_PRICE", record.String("$1"))
	if _, err := tm.ApplyRecords(context.Background(), "batch_feed", []*record.Record{rec}); err != nil {
		t.Fatal(err)
	}

	after := getWithHeaders(t, s, "/v1/cheapest?limit=5", map[string]string{"If-None-Match": etag})
	if after.Code != http.StatusOK {
		t.Fatalf("revalidation after ApplyRecords = %d, want 200 (stale 304 bug)", after.Code)
	}
	if got := after.Header().Get("ETag"); got == etag {
		t.Errorf("ETag unchanged across a write: %q", got)
	}
	if !strings.Contains(after.Body.String(), "Zyxxaq Cascade") {
		t.Errorf("fresh body after write lacks the new record: %s", after.Body.String())
	}
}

// TestRateLimitShedsOverRateOnly: a client sustained over its rate gets
// 429 + Retry-After; a different client (distinct X-API-Key) staying
// inside its own bucket is unaffected by the noisy neighbor.
func TestRateLimitShedsOverRateOnly(t *testing.T) {
	tm := newTamer(t)
	s := New(tm, WithGeneration(tm.DataGeneration), WithMetrics(obs.NewRegistry()), WithRateLimit(5, 5))

	okA, shedA := 0, 0
	for i := 0; i < 20; i++ {
		rec := getWithHeaders(t, s, "/v1/stats", map[string]string{"X-API-Key": "noisy"})
		switch rec.Code {
		case http.StatusOK:
			okA++
		case http.StatusTooManyRequests:
			shedA++
			ra := rec.Header().Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Fatalf("429 Retry-After = %q, want integer seconds >= 1", ra)
			}
			if !strings.Contains(rec.Body.String(), `"busy"`) {
				t.Fatalf("429 body lacks typed busy error: %s", rec.Body.String())
			}
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	}
	if shedA == 0 {
		t.Fatalf("20 instant requests against burst 5 never shed (ok=%d)", okA)
	}
	if okA == 0 {
		t.Fatal("burst traffic fully shed; bucket never admitted anything")
	}

	// The in-limit client's bucket is its own: full burst available.
	for i := 0; i < 3; i++ {
		if rec := getWithHeaders(t, s, "/v1/top?limit=3", map[string]string{"X-API-Key": "polite"}); rec.Code != http.StatusOK {
			t.Fatalf("in-limit client request %d = %d, want 200", i, rec.Code)
		}
	}

	// Exempt paths never shed, even for the noisy client.
	if rec := getWithHeaders(t, s, "/healthz", map[string]string{"X-API-Key": "noisy"}); rec.Code != http.StatusOK {
		t.Errorf("/healthz rate limited: %d", rec.Code)
	}
}

// TestLegacyRoutesThroughMiddleware is the satellite regression: the
// deprecated unversioned shims ride the same middleware chain as /v1 —
// they are metered and rate limited, while still carrying their
// Deprecation header.
func TestLegacyRoutesThroughMiddleware(t *testing.T) {
	tm := newTamer(t)
	reg := obs.NewRegistry()
	s := New(tm, WithGeneration(tm.DataGeneration), WithMetrics(reg), WithRateLimit(3, 3))

	if rec := getWithHeaders(t, s, "/stats", nil); rec.Code != http.StatusOK || rec.Header().Get("Deprecation") == "" {
		t.Fatalf("legacy /stats = %d, Deprecation %q", rec.Code, rec.Header().Get("Deprecation"))
	}
	if !strings.Contains(reg.Render(), `dt_http_requests_total{route="/stats",method="GET",code="200"}`) {
		t.Errorf("legacy route not metered:\n%s", reg.Render())
	}

	shed := false
	for i := 0; i < 10; i++ {
		if rec := getWithHeaders(t, s, "/top", nil); rec.Code == http.StatusTooManyRequests {
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("legacy 429 without Retry-After")
			}
			shed = true
			break
		}
	}
	if !shed {
		t.Error("legacy route not rate limited")
	}
}

// TestMetricsExposeEveryV1Routes: after traffic, /metrics carries request
// counts and latency histograms labeled with each /v1 route, plus the
// cache and admission-drop series.
func TestMetricsExposeEveryV1Routes(t *testing.T) {
	tm := newTamer(t)
	reg := obs.NewRegistry()
	s := New(tm, WithGeneration(tm.DataGeneration), WithMetrics(reg), WithRateLimit(1, 1))

	v1Gets := []string{
		"/v1/stats", "/v1/types", "/v1/top", "/v1/cheapest",
		"/v1/find?q=type+%3D+Movie", "/v1/show?name=Matilda", "/v1/live/stats",
	}
	for _, p := range v1Gets {
		getWithHeaders(t, s, p, map[string]string{"X-API-Key": "m" + p})
	}
	// Writes in batch mode answer 503 — still a metered request.
	for _, p := range []string{"/v1/ingest/text", "/v1/ingest/records", "/v1/flush"} {
		req := httptest.NewRequest(http.MethodPost, p, strings.NewReader("{}"))
		req.Header.Set("X-API-Key", "m"+p)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}
	// One over-rate burst materializes the admission-drop series.
	for i := 0; i < 5; i++ {
		getWithHeaders(t, s, "/v1/stats", map[string]string{"X-API-Key": "burst"})
	}

	text := reg.Render()
	for _, route := range []string{
		"/v1/stats", "/v1/types", "/v1/top", "/v1/cheapest", "/v1/find",
		"/v1/show", "/v1/live/stats", "/v1/ingest/text", "/v1/ingest/records", "/v1/flush",
	} {
		if !strings.Contains(text, fmt.Sprintf(`dt_http_requests_total{route="%s"`, route)) {
			t.Errorf("no request series for %s", route)
		}
		if !strings.Contains(text, fmt.Sprintf(`dt_http_request_seconds_bucket{route="%s"`, route)) {
			t.Errorf("no latency series for %s", route)
		}
	}
	for _, series := range []string{
		"dt_cache_hits_total", "dt_cache_misses_total",
		`dt_admission_dropped_total{route="/v1/stats",reason="rate"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %q in:\n%s", series, text)
		}
	}

	// /metrics itself serves through the handler and is never throttled.
	rec := getWithHeaders(t, s, "/metrics", map[string]string{"X-API-Key": "burst"})
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
}

// TestAdmissionShedsPastQueue exercises the semaphore directly: with one
// slot held and a zero queue, the next request sheds instantly; after
// release it admits again.
func TestAdmissionShedsPastQueue(t *testing.T) {
	a := newAdmission(1, 0)
	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)

	release, shed, err := a.tryEnter(r)
	if shed || err != nil {
		t.Fatalf("first enter: shed=%v err=%v", shed, err)
	}
	if _, shed, err := a.tryEnter(r); !shed || err != nil {
		t.Fatalf("second enter with full slot: shed=%v err=%v, want shed", shed, err)
	}
	release()
	release2, shed, err := a.tryEnter(r)
	if shed || err != nil {
		t.Fatalf("enter after release: shed=%v err=%v", shed, err)
	}
	release2()

	// With a queue of one, a waiter parks until release instead of shedding.
	b := newAdmission(1, 1)
	hold, _, _ := b.tryEnter(r)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rel, shed, err := b.tryEnter(r)
		if shed || err != nil {
			t.Errorf("queued enter: shed=%v err=%v", shed, err)
			return
		}
		rel()
	}()
	time.Sleep(10 * time.Millisecond)
	hold()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after release")
	}

	// A cancelled waiter unblocks with the context error.
	c := newAdmission(1, 1)
	holdC, _, _ := c.tryEnter(r)
	defer holdC()
	ctx, cancel := context.WithCancel(context.Background())
	rc := httptest.NewRequest(http.MethodGet, "/v1/stats", nil).WithContext(ctx)
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, shed, err := c.tryEnter(rc); shed || err == nil {
		t.Fatalf("cancelled waiter: shed=%v err=%v, want context error", shed, err)
	}
}

// TestCachedReadsDuringIngest hammers the cacheable routes while a live
// ingester applies writes — run under -race this is the concurrency
// gate for the cache/generation interplay, and the final read proves no
// terminally stale body survives the last write.
func TestCachedReadsDuringIngest(t *testing.T) {
	tm := core.New(core.Config{Fragments: 150, FTSources: 3, Shards: 2, Seed: 11})
	if err := tm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ing, err := live.Open(context.Background(), tm, live.Config{Dir: t.TempDir(), BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	s := NewLive(tm, ing, WithGeneration(tm.DataGeneration), WithMetrics(obs.NewRegistry()))

	const writers, readers, rounds = 2, 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				body := fmt.Sprintf(`{"source":"race_feed","records":[{"SHOW_NAME":"Racer %d-%d","CHEAPEST_PRICE":"$%d"}]}`, w, i, 10+i)
				req := httptest.NewRequest(http.MethodPost, "/v1/ingest/records", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusAccepted {
					t.Errorf("ingest = %d: %s", rec.Code, rec.Body)
					return
				}
				req = httptest.NewRequest(http.MethodPost, "/v1/flush", nil)
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("flush = %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{"/v1/cheapest?limit=5", "/v1/top?limit=5", "/v1/stats", "/v1/types"}
			var etag string
			for i := 0; i < rounds*3; i++ {
				hdr := map[string]string{}
				if etag != "" && i%3 == 0 {
					hdr["If-None-Match"] = etag
				}
				rec := getWithHeaders(t, s, paths[i%len(paths)], hdr)
				switch rec.Code {
				case http.StatusOK:
					etag = rec.Header().Get("ETag")
					if !strings.Contains(rec.Body.String(), `"data"`) {
						t.Errorf("malformed envelope: %s", rec.Body.String())
						return
					}
				case http.StatusNotModified:
					// fine: nothing changed between the tagged read and now
				default:
					t.Errorf("GET %s = %d", paths[i%len(paths)], rec.Code)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Post-quiesce freshness: the last writes must be visible through the
	// cache, not shadowed by an entry from an earlier generation.
	rec := getWithHeaders(t, s, "/v1/cheapest?limit=200", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("final read = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "Racer") {
		t.Error("ingested records missing from cached read after quiesce")
	}
}
