// Package serve exposes a fused pipeline over HTTP with JSON endpoints —
// the integration surface a deployment of this system would offer:
//
//	GET /stats                  Tables I-II store statistics
//	GET /types                  Table III type distribution
//	GET /top?k=10               Table IV discussion ranking
//	GET /show?name=Matilda      Table V (web text) and Table VI (fused) views
//	GET /find?q=expr&limit=10   filter-language query over the entity store
//	GET /cheapest?k=5           best-price ranking over the fused table
package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/store"
)

// Server wraps a completed pipeline run.
type Server struct {
	tamer *core.Tamer
	mux   *http.ServeMux
}

// New builds a server over an already-Run pipeline.
func New(t *core.Tamer) *Server {
	s := &Server{tamer: t, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /types", s.handleTypes)
	s.mux.HandleFunc("GET /top", s.handleTop)
	s.mux.HandleFunc("GET /show", s.handleShow)
	s.mux.HandleFunc("GET /find", s.handleFind)
	s.mux.HandleFunc("GET /cheapest", s.handleCheapest)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]store.Stats{
		"instance": s.tamer.InstanceStats(),
		"entity":   s.tamer.EntityStats(),
	})
}

func (s *Server) handleTypes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.EntityTypeCounts())
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.TopDiscussed(intParam(r, "k", 10)))
}

// showView is the JSON rendering of the Table V / Table VI records.
type showView struct {
	WebText map[string]string `json:"web_text"`
	Fused   map[string]string `json:"fused"`
}

func recordMap(rec *record.Record) map[string]string {
	out := make(map[string]string, rec.Len())
	for _, f := range rec.Fields() {
		if !f.Value.IsNull() {
			out[f.Name] = f.Value.Str()
		}
	}
	return out
}

func (s *Server) handleShow(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	writeJSON(w, http.StatusOK, showView{
		WebText: recordMap(s.tamer.QueryWebText(name)),
		Fused:   recordMap(s.tamer.QueryFused(name)),
	})
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	filter, err := store.ParseFilter(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := intParam(r, "limit", 10)
	docs := s.tamer.Entities.Find(filter)
	total := len(docs)
	if len(docs) > limit {
		docs = docs[:limit]
	}
	out := make([]map[string]string, len(docs))
	for i, d := range docs {
		m := map[string]string{}
		for _, fieldName := range d.Names() {
			v, _ := d.Get(fieldName)
			if v.IsScalar() {
				m[fieldName] = v.Scalar().Str()
			}
		}
		out[i] = m
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "entities": out})
}

func (s *Server) handleCheapest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.CheapestShows(intParam(r, "k", 5)))
}
