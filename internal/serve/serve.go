// Package serve exposes a fused pipeline over HTTP — the integration
// surface a deployment of this system would offer. The server depends
// only on the Querier/Ingestor interfaces below, so any pipeline
// implementation (or a test double) can sit behind it.
//
// Versioned API (/v1): every response is the uniform envelope
//
//	{"data": ...}                                  on success
//	{"error": {"code": "...", "message": "..."}}   on failure
//
// where error.code is a dterr code and the HTTP status is derived from it
// (invalid_argument→400, not_found→404, busy→429, closed/unavailable→503,
// canceled→499, deadline_exceeded→504). List endpoints paginate with
// limit/offset and echo items/total/limit/offset inside data. Handlers
// run under the request context, so client disconnects cancel server-side
// work.
//
// Degraded reads: in cluster mode a fan-out read whose shards are partly
// unreachable returns the surviving shards' data with a
// "degraded": {"shards_missing": N} envelope field and an X-DT-Degraded
// header instead of failing. ?partial=0 restores strict semantics (any
// unreachable shard fails the request). Degraded responses carry no ETag
// and are never cached.
//
//	GET  /v1/stats                    Tables I-II store statistics
//	GET  /v1/types?limit=&offset=     Table III type distribution
//	GET  /v1/top?limit=&offset=       Table IV discussion ranking
//	GET  /v1/cheapest?limit=&offset=  best-price ranking over the fused table
//	GET  /v1/find?q=&limit=&offset=   filter-language query over entities
//	GET  /v1/show?name=Matilda        Table V + Table VI views (404 unknown)
//	POST /v1/ingest/text              WAL-durable web-text ingestion (202)
//	POST /v1/ingest/records           WAL-durable structured records (202)
//	POST /v1/flush[?checkpoint=1]     drain apply queue / snapshot + truncate
//	GET  /v1/live/stats               queue depth, batch latency, WAL size
//
// Legacy unversioned routes (/stats, /types, /top, /show, /find,
// /cheapest, /ingest/*, /flush, /live/stats) remain as deprecated shims
// for one release; they keep their pre-/v1 response shapes and send a
// Deprecation header pointing at the /v1 successor.
//
// Production serving middleware (opt-in through ServerOptions) wraps the
// whole route tree, legacy shims included: per-route metrics
// (internal/obs, exposed at GET /metrics), per-client token-bucket rate
// limiting, queue-depth admission control shedding with 429 +
// Retry-After, and a data-generation-keyed response cache with strong
// ETags and If-None-Match revalidation for the read-only /v1 GET routes.
// See middleware.go and cache.go.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"repro/dterr"
	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/ingest"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/store"
)

// Querier is the read surface the server needs from a pipeline.
type Querier interface {
	InstanceStats() store.Stats
	EntityStats() store.Stats
	InstanceStatsCtx(ctx context.Context) (store.Stats, error)
	EntityStatsCtx(ctx context.Context) (store.Stats, error)
	EntityTypeCounts(ctx context.Context) ([]core.TypeCount, error)
	TopDiscussed(ctx context.Context, k int) ([]fuse.Discussed, error)
	QueryWebText(ctx context.Context, show string) (*record.Record, error)
	QueryFused(ctx context.Context, show string) (*record.Record, error)
	QueryShow(ctx context.Context, show string) (web, fused *record.Record, err error)
	ShowInFused(ctx context.Context, show string) (bool, error)
	CheapestShows(ctx context.Context, k int) ([]fuse.PricedShow, error)
	FindEntities(ctx context.Context, query string) ([]*store.Doc, error)
}

// Ingestor is the write surface the server needs in live mode.
type Ingestor interface {
	IngestText(ctx context.Context, frags []live.Fragment) error
	IngestRecords(ctx context.Context, source string, recs []*record.Record) error
	Flush(ctx context.Context) error
	Checkpoint(ctx context.Context) error
	Stats() live.Stats
}

// The concrete pipeline satisfies both interfaces.
var (
	_ Querier  = (*core.Tamer)(nil)
	_ Ingestor = (*live.Ingester)(nil)
)

// Server wraps a completed pipeline run, optionally with a live ingester.
type Server struct {
	q   Querier
	ing Ingestor // nil in read-only (batch) mode
	mux *http.ServeMux

	opts    serverOpts
	routes  map[string]bool // registered paths, for bounded metric labels
	handler http.Handler    // mux wrapped in the middleware chain

	cache          *respCache   // nil when caching is off
	limiter        *rateLimiter // nil when rate limiting is off
	adm            *admission   // nil when admission control is off
	admissionDrops *obs.CounterVec
}

// New builds a read-only server over an already-run pipeline.
func New(q Querier, opts ...ServerOption) *Server { return NewLive(q, nil, opts...) }

// NewLive builds a server over a pipeline with streaming writes enabled
// through ing; a nil ingester serves the write endpoints as unavailable.
// Pass an untyped nil (or use New) — a typed nil pointer in a non-nil
// interface would slip past the availability check.
func NewLive(q Querier, ing Ingestor, opts ...ServerOption) *Server {
	s := &Server{q: q, ing: ing, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(&s.opts)
	}

	// Liveness probe: process is up and serving. Unversioned by convention
	// (load balancers and the cluster's dtnode expose the same path).
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Versioned surface.
	s.mux.HandleFunc("GET /v1/stats", s.v1Stats)
	s.mux.HandleFunc("GET /v1/types", s.v1Types)
	s.mux.HandleFunc("GET /v1/top", s.v1Top)
	s.mux.HandleFunc("GET /v1/cheapest", s.v1Cheapest)
	s.mux.HandleFunc("GET /v1/find", s.v1Find)
	s.mux.HandleFunc("GET /v1/show", s.v1Show)
	s.mux.HandleFunc("POST /v1/ingest/text", s.v1IngestText)
	s.mux.HandleFunc("POST /v1/ingest/records", s.v1IngestRecords)
	s.mux.HandleFunc("POST /v1/flush", s.v1Flush)
	s.mux.HandleFunc("GET /v1/live/stats", s.v1LiveStats)

	// Deprecated legacy shims, one release of grace.
	s.mux.HandleFunc("GET /stats", deprecated("/v1/stats", s.handleStats))
	s.mux.HandleFunc("GET /types", deprecated("/v1/types", s.handleTypes))
	s.mux.HandleFunc("GET /top", deprecated("/v1/top", s.handleTop))
	s.mux.HandleFunc("GET /show", deprecated("/v1/show", s.handleShow))
	s.mux.HandleFunc("GET /find", deprecated("/v1/find", s.handleFind))
	s.mux.HandleFunc("GET /cheapest", deprecated("/v1/cheapest", s.handleCheapest))
	s.mux.HandleFunc("POST /ingest/text", deprecated("/v1/ingest/text", s.handleIngestText))
	s.mux.HandleFunc("POST /ingest/records", deprecated("/v1/ingest/records", s.handleIngestRecords))
	s.mux.HandleFunc("POST /flush", deprecated("/v1/flush", s.handleFlush))
	s.mux.HandleFunc("GET /live/stats", deprecated("/v1/live/stats", s.handleLiveStats))

	s.routes = map[string]bool{
		"/healthz": true, "/metrics": true,
		"/v1/stats": true, "/v1/types": true, "/v1/top": true,
		"/v1/cheapest": true, "/v1/find": true, "/v1/show": true,
		"/v1/ingest/text": true, "/v1/ingest/records": true,
		"/v1/flush": true, "/v1/live/stats": true,
		"/stats": true, "/types": true, "/top": true, "/show": true,
		"/find": true, "/cheapest": true, "/ingest/text": true,
		"/ingest/records": true, "/flush": true, "/live/stats": true,
	}
	s.assembleChain()
	return s
}

// assembleChain wraps the mux in the configured middleware, outermost
// last in this function: metrics → rate limit → cache → admission → mux.
// Every route — /v1 and the deprecated legacy shims alike — passes
// through the same chain, so metrics and admission cannot be bypassed by
// calling an old path.
func (s *Server) assembleChain() {
	if s.opts.reg != nil {
		s.mux.Handle("GET /metrics", s.opts.reg.Handler())
		if s.opts.pprof {
			obs.RegisterPprof(s.mux)
		}
	}

	h := http.Handler(s.mux)
	if s.opts.maxActive > 0 {
		s.adm = newAdmission(s.opts.maxActive, s.opts.maxQueue)
		h = s.admissionMiddleware(h)
	}
	cacheBytes := s.opts.cacheBytes
	if cacheBytes == 0 {
		cacheBytes = defaultCacheBytes
	}
	if s.opts.generation != nil && cacheBytes > 0 {
		// Cache counters register even without an exposed registry so the
		// middleware never nil-checks them; they surface on /metrics only
		// when WithMetrics is configured.
		reg := s.opts.reg
		if reg == nil {
			reg = obs.NewRegistry()
		}
		s.cache = newRespCache(cacheBytes, reg)
		h = s.cacheMiddleware(h)
	}
	if s.opts.rate > 0 {
		s.limiter = newRateLimiter(s.opts.rate, s.opts.burst)
		h = s.rateLimitMiddleware(h)
	}
	if s.opts.reg != nil {
		s.admissionDrops = s.opts.reg.Counter("dt_admission_dropped_total",
			"Requests shed before handler work, by route and reason (rate|queue).",
			"route", "reason")
		h = obs.NewHTTPMetrics(s.opts.reg).Middleware(s.routeLabel, h)
	}
	s.handler = h
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// deprecated marks a legacy handler's responses with the successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// ---- envelope and helpers ---------------------------------------------

// envelope is the uniform /v1 response shape. Degraded appears only on
// partial fan-out reads: some shards were unreachable and the data field
// is an explicit under-count, not the full answer.
type envelope struct {
	Data     any           `json:"data,omitempty"`
	Degraded *degradedInfo `json:"degraded,omitempty"`
	Error    *errBody      `json:"error,omitempty"`
}

// degradedInfo quantifies a partial read.
type degradedInfo struct {
	ShardsMissing int `json:"shards_missing"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeData wraps v in the success envelope.
func writeData(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, envelope{Data: v})
}

// writeErr maps a typed error to its status and the error envelope.
func writeErr(w http.ResponseWriter, err error) {
	code := dterr.CodeOf(err)
	writeJSON(w, dterr.HTTPStatus(code), envelope{Error: &errBody{Code: string(code), Message: err.Error()}})
}

// degradedHeader is set (value "shards_missing=N") on any response
// assembled from a partial fan-out, so callers and middleware can detect
// degradation without parsing the body.
const degradedHeader = "X-DT-Degraded"

// readCtx prepares a /v1 read handler's context. By default fan-out reads
// tolerate unreachable shards (degraded partial results); ?partial=0
// opts back into strict all-shards-or-error semantics, in which case the
// returned tracker is nil.
func readCtx(r *http.Request) (context.Context, *store.PartialReads, error) {
	ctx := r.Context()
	if raw := r.URL.Query().Get("partial"); raw != "" {
		ok, err := strconv.ParseBool(raw)
		if err != nil {
			return ctx, nil, dterr.Newf(dterr.CodeInvalidArgument, "parameter \"partial\": %q is not a boolean", raw)
		}
		if !ok {
			return ctx, nil, nil
		}
	}
	ctx, pr := store.WithPartialReads(ctx)
	return ctx, pr, nil
}

// writeRead writes a /v1 read response, surfacing degradation: when the
// tracker recorded missing shards the envelope carries the degraded
// field, the response carries the X-DT-Degraded header, and cache
// validators are stripped (no ETag, no-store) so a partial body is never
// cached or replayed as the authoritative answer.
func writeRead(w http.ResponseWriter, pr *store.PartialReads, status int, v any) {
	if n := pr.Missing(); n > 0 {
		w.Header().Set(degradedHeader, "shards_missing="+strconv.Itoa(n))
		w.Header().Del("ETag")
		w.Header().Set("Cache-Control", "no-store")
		writeJSON(w, status, envelope{Data: v, Degraded: &degradedInfo{ShardsMissing: n}})
		return
	}
	writeJSON(w, status, envelope{Data: v})
}

// writeError is the legacy (pre-envelope) error shape.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// intParam leniently reads a legacy numeric query parameter, falling back
// to def on anything unparsable.
//
// Deprecated: the /v1 handlers use strictIntParam, which rejects malformed
// values instead of silently swallowing them.
func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return def
	}
	return n
}

// strictIntParam reads a numeric query parameter, returning an
// invalid-argument error on malformed or negative values.
func strictIntParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, dterr.Newf(dterr.CodeInvalidArgument, "parameter %q: %q is not an integer", name, raw)
	}
	if n < 0 {
		return 0, dterr.Newf(dterr.CodeInvalidArgument, "parameter %q: must be >= 0, got %d", name, n)
	}
	return n, nil
}

// maxPageLimit bounds one page so a single request cannot serialize an
// unbounded result set.
const maxPageLimit = 1000

// pageList is the data payload of every /v1 list endpoint.
type pageList struct {
	Items  any `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// pageParams reads limit/offset with strict parsing. An absent limit uses
// defLimit; limit=0 is an explicit empty page (total still reported).
func pageParams(r *http.Request, defLimit int) (limit, offset int, err error) {
	limit, err = strictIntParam(r, "limit", defLimit)
	if err != nil {
		return 0, 0, err
	}
	if limit > maxPageLimit {
		return 0, 0, dterr.Newf(dterr.CodeInvalidArgument, "parameter \"limit\": must be <= %d, got %d", maxPageLimit, limit)
	}
	offset, err = strictIntParam(r, "offset", 0)
	if err != nil {
		return 0, 0, err
	}
	return limit, offset, nil
}

// paginate slices items to the requested window. Offsets past the end
// yield an empty page with the true total.
func paginate[T any](items []T, limit, offset int) pageList {
	total := len(items)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	window := items[offset:end]
	if window == nil {
		window = []T{}
	}
	return pageList{Items: window, Total: total, Limit: limit, Offset: offset}
}

func recordMap(rec *record.Record) map[string]string {
	out := make(map[string]string, rec.Len())
	for _, f := range rec.Fields() {
		if !f.Value.IsNull() {
			out[f.Name] = f.Value.Str()
		}
	}
	return out
}

func docMap(d *store.Doc) map[string]string {
	m := map[string]string{}
	for _, fieldName := range d.Names() {
		v, _ := d.Get(fieldName)
		if v.IsScalar() {
			m[fieldName] = v.Scalar().Str()
		}
	}
	return m
}

// ---- /v1 read handlers -------------------------------------------------

func (s *Server) v1Stats(w http.ResponseWriter, r *http.Request) {
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	inst, err := s.q.InstanceStatsCtx(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	ent, err := s.q.EntityStatsCtx(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeRead(w, pr, http.StatusOK, map[string]store.Stats{
		"instance": inst,
		"entity":   ent,
	})
}

func (s *Server) v1Types(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := pageParams(r, 50)
	if err != nil {
		writeErr(w, err)
		return
	}
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rows, err := s.q.EntityTypeCounts(ctx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeRead(w, pr, http.StatusOK, paginate(rows, limit, offset))
}

func (s *Server) v1Top(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := pageParams(r, 10)
	if err != nil {
		writeErr(w, err)
		return
	}
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rows, err := s.q.TopDiscussed(ctx, 0) // full ranking, then page
	if err != nil {
		writeErr(w, err)
		return
	}
	writeRead(w, pr, http.StatusOK, paginate(rows, limit, offset))
}

func (s *Server) v1Cheapest(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := pageParams(r, 10)
	if err != nil {
		writeErr(w, err)
		return
	}
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rows, err := s.q.CheapestShows(ctx, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeRead(w, pr, http.StatusOK, paginate(rows, limit, offset))
}

func (s *Server) v1Find(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := pageParams(r, 10)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, dterr.New(dterr.CodeInvalidArgument, "missing q parameter"))
		return
	}
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	docs, err := s.q.FindEntities(ctx, q)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]map[string]string, len(docs))
	for i, d := range docs {
		out[i] = docMap(d)
	}
	writeRead(w, pr, http.StatusOK, paginate(out, limit, offset))
}

// showView is the JSON rendering of the Table V / Table VI records.
type showView struct {
	WebText map[string]string `json:"web_text"`
	Fused   map[string]string `json:"fused"`
}

func (s *Server) v1Show(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, dterr.New(dterr.CodeInvalidArgument, "missing name parameter"))
		return
	}
	ctx, pr, err := readCtx(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	// One combined query: the web-text view is computed once and shared by
	// both halves of the response instead of re-running the text search.
	web, fused, err := s.q.QueryShow(ctx, name)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Unknown show: no text evidence and no fused-table record. The
	// existence check is independent of field counts, so a fused record
	// that happens to add nothing beyond SHOW_NAME still counts as found.
	if !web.Has("TEXT_FEED") {
		inFused, err := s.q.ShowInFused(ctx, name)
		if err != nil {
			writeErr(w, err)
			return
		}
		if !inFused {
			// A 404 computed while text shards were unreachable is
			// advisory, not authoritative: flag it so callers can retry
			// rather than conclude the show does not exist.
			if n := pr.Missing(); n > 0 {
				w.Header().Set(degradedHeader, "shards_missing="+strconv.Itoa(n))
				w.Header().Set("Cache-Control", "no-store")
			}
			writeErr(w, dterr.Newf(dterr.CodeNotFound, "show %q not found in web text or fused sources", name))
			return
		}
	}
	writeRead(w, pr, http.StatusOK, showView{WebText: recordMap(web), Fused: recordMap(fused)})
}

// ---- /v1 write handlers ------------------------------------------------

// errLiveDisabled is the batch-mode rejection for write endpoints.
var errLiveDisabled = dterr.New(dterr.CodeUnavailable, "live ingestion disabled; restart with --live")

// maxIngestBody bounds one write request (8 MB) so a single oversized body
// cannot bypass the event-count backpressure of the apply queue.
const maxIngestBody = 8 << 20

// ingestTextRequest is the POST /ingest/text body.
type ingestTextRequest struct {
	Fragments []struct {
		URL  string `json:"url"`
		Text string `json:"text"`
	} `json:"fragments"`
}

// parseIngestText decodes and validates a text-ingestion body.
func parseIngestText(w http.ResponseWriter, r *http.Request) ([]live.Fragment, error) {
	var req ingestTextRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		return nil, dterr.Wrapf(dterr.CodeInvalidArgument, err, "decoding body")
	}
	if len(req.Fragments) == 0 {
		return nil, dterr.New(dterr.CodeInvalidArgument, "no fragments in request")
	}
	frags := make([]live.Fragment, len(req.Fragments))
	for i, f := range req.Fragments {
		if f.Text == "" {
			return nil, dterr.New(dterr.CodeInvalidArgument, "fragment with empty text")
		}
		frags[i] = live.Fragment{URL: f.URL, Text: f.Text}
	}
	return frags, nil
}

func (s *Server) v1IngestText(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeErr(w, errLiveDisabled)
		return
	}
	frags, err := parseIngestText(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.ing.IngestText(r.Context(), frags); err != nil {
		writeErr(w, err)
		return
	}
	writeData(w, http.StatusAccepted, map[string]int{"accepted": len(frags)})
}

// ingestRecordsRequest is the POST /ingest/records body: flat JSON objects,
// the same row shape ingest.ReadJSON accepts.
type ingestRecordsRequest struct {
	Source  string           `json:"source"`
	Records []map[string]any `json:"records"`
}

// parseIngestRecords decodes and validates a record-ingestion body.
func parseIngestRecords(w http.ResponseWriter, r *http.Request) (string, []*record.Record, error) {
	var req ingestRecordsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		return "", nil, dterr.Wrapf(dterr.CodeInvalidArgument, err, "decoding body")
	}
	if req.Source == "" {
		return "", nil, dterr.New(dterr.CodeInvalidArgument, "missing source")
	}
	if len(req.Records) == 0 {
		return "", nil, dterr.New(dterr.CodeInvalidArgument, "no records in request")
	}
	recs := make([]*record.Record, len(req.Records))
	for i, row := range req.Records {
		rec, err := ingest.RecordFromMap(row)
		if err != nil {
			return "", nil, dterr.Wrap(dterr.CodeInvalidArgument, err)
		}
		recs[i] = rec
	}
	return req.Source, recs, nil
}

func (s *Server) v1IngestRecords(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeErr(w, errLiveDisabled)
		return
	}
	source, recs, err := parseIngestRecords(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.ing.IngestRecords(r.Context(), source, recs); err != nil {
		writeErr(w, err)
		return
	}
	writeData(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
}

func (s *Server) v1Flush(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeErr(w, errLiveDisabled)
		return
	}
	raw := r.URL.Query().Get("checkpoint")
	checkpoint := false
	if raw != "" {
		var err error
		checkpoint, err = strconv.ParseBool(raw)
		if err != nil {
			writeErr(w, dterr.Newf(dterr.CodeInvalidArgument, "parameter \"checkpoint\": %q is not a boolean", raw))
			return
		}
	}
	op := "flush"
	var err error
	if checkpoint {
		op, err = "checkpoint", s.ing.Checkpoint(r.Context()) // Checkpoint flushes internally
	} else {
		err = s.ing.Flush(r.Context())
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeData(w, http.StatusOK, map[string]string{"status": op + " complete"})
}

func (s *Server) v1LiveStats(w http.ResponseWriter, _ *http.Request) {
	if s.ing == nil {
		writeErr(w, errLiveDisabled)
		return
	}
	writeData(w, http.StatusOK, s.ing.Stats())
}

// ---- legacy (deprecated) handlers --------------------------------------

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]store.Stats{
		"instance": s.q.InstanceStats(),
		"entity":   s.q.EntityStats(),
	})
}

func (s *Server) handleTypes(w http.ResponseWriter, r *http.Request) {
	rows, err := s.q.EntityTypeCounts(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	rows, err := s.q.TopDiscussed(r.Context(), intParam(r, "k", 10))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleShow(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	web, err := s.q.QueryWebText(r.Context(), name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	fused, err := s.q.QueryFused(r.Context(), name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, showView{WebText: recordMap(web), Fused: recordMap(fused)})
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	docs, err := s.q.FindEntities(r.Context(), q)
	if err != nil {
		writeError(w, dterr.HTTPStatus(dterr.CodeOf(err)), err.Error())
		return
	}
	limit := intParam(r, "limit", 10)
	total := len(docs)
	if len(docs) > limit {
		docs = docs[:limit]
	}
	out := make([]map[string]string, len(docs))
	for i, d := range docs {
		out[i] = docMap(d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "entities": out})
}

func (s *Server) handleCheapest(w http.ResponseWriter, r *http.Request) {
	rows, err := s.q.CheapestShows(r.Context(), intParam(r, "k", 5))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

// requireLive rejects write requests when the server runs in batch mode.
func (s *Server) requireLive(w http.ResponseWriter) bool {
	if s.ing == nil {
		writeError(w, http.StatusServiceUnavailable, "live ingestion disabled; restart with --live")
		return false
	}
	return true
}

func (s *Server) handleIngestText(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	frags, err := parseIngestText(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.ing.IngestText(r.Context(), frags); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(frags)})
}

func (s *Server) handleIngestRecords(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	source, recs, err := parseIngestRecords(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.ing.IngestRecords(r.Context(), source, recs); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	op, err := "flush", error(nil)
	if ck, _ := strconv.ParseBool(r.URL.Query().Get("checkpoint")); ck {
		op, err = "checkpoint", s.ing.Checkpoint(r.Context())
	} else {
		err = s.ing.Flush(r.Context())
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": op + " complete"})
}

func (s *Server) handleLiveStats(w http.ResponseWriter, _ *http.Request) {
	if !s.requireLive(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.ing.Stats())
}
