// Package serve exposes a fused pipeline over HTTP with JSON endpoints —
// the integration surface a deployment of this system would offer.
//
// Read endpoints (always available):
//
//	GET /stats                  Tables I-II store statistics
//	GET /types                  Table III type distribution
//	GET /top?k=10               Table IV discussion ranking
//	GET /show?name=Matilda      Table V (web text) and Table VI (fused) views
//	GET /find?q=expr&limit=10   filter-language query over the entity store
//	GET /cheapest?k=5           best-price ranking over the fused table
//
// Write endpoints (live mode, backed by internal/live; 503 otherwise):
//
//	POST /ingest/text           {"fragments":[{"url":...,"text":...}]} — WAL-
//	                            durable web-text ingestion, 202 on ack
//	POST /ingest/records        {"source":"name","records":[{...}]} — WAL-
//	                            durable structured-record ingestion, 202 on ack
//	POST /flush                 drain the apply queue; ?checkpoint=1 also
//	                            snapshots state and truncates the WAL
//	GET  /live/stats            queue depth, batch latency, WAL size, replay info
package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/live"
	"repro/internal/record"
	"repro/internal/store"
)

// Server wraps a completed pipeline run, optionally with a live ingester.
type Server struct {
	tamer    *core.Tamer
	ingester *live.Ingester // nil in read-only (batch) mode
	mux      *http.ServeMux
}

// New builds a read-only server over an already-Run pipeline.
func New(t *core.Tamer) *Server { return NewLive(t, nil) }

// NewLive builds a server over a pipeline with streaming writes enabled
// through ing; a nil ingester serves the write endpoints as 503.
func NewLive(t *core.Tamer, ing *live.Ingester) *Server {
	s := &Server{tamer: t, ingester: ing, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /types", s.handleTypes)
	s.mux.HandleFunc("GET /top", s.handleTop)
	s.mux.HandleFunc("GET /show", s.handleShow)
	s.mux.HandleFunc("GET /find", s.handleFind)
	s.mux.HandleFunc("GET /cheapest", s.handleCheapest)
	s.mux.HandleFunc("POST /ingest/text", s.handleIngestText)
	s.mux.HandleFunc("POST /ingest/records", s.handleIngestRecords)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /live/stats", s.handleLiveStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]store.Stats{
		"instance": s.tamer.InstanceStats(),
		"entity":   s.tamer.EntityStats(),
	})
}

func (s *Server) handleTypes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.EntityTypeCounts())
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.TopDiscussed(intParam(r, "k", 10)))
}

// showView is the JSON rendering of the Table V / Table VI records.
type showView struct {
	WebText map[string]string `json:"web_text"`
	Fused   map[string]string `json:"fused"`
}

func recordMap(rec *record.Record) map[string]string {
	out := make(map[string]string, rec.Len())
	for _, f := range rec.Fields() {
		if !f.Value.IsNull() {
			out[f.Name] = f.Value.Str()
		}
	}
	return out
}

func (s *Server) handleShow(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	writeJSON(w, http.StatusOK, showView{
		WebText: recordMap(s.tamer.QueryWebText(name)),
		Fused:   recordMap(s.tamer.QueryFused(name)),
	})
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	filter, err := store.ParseFilter(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := intParam(r, "limit", 10)
	docs := s.tamer.Entities.Find(filter)
	total := len(docs)
	if len(docs) > limit {
		docs = docs[:limit]
	}
	out := make([]map[string]string, len(docs))
	for i, d := range docs {
		m := map[string]string{}
		for _, fieldName := range d.Names() {
			v, _ := d.Get(fieldName)
			if v.IsScalar() {
				m[fieldName] = v.Scalar().Str()
			}
		}
		out[i] = m
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "entities": out})
}

func (s *Server) handleCheapest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tamer.CheapestShows(intParam(r, "k", 5)))
}

// requireLive rejects write requests when the server runs in batch mode.
func (s *Server) requireLive(w http.ResponseWriter) bool {
	if s.ingester == nil {
		writeError(w, http.StatusServiceUnavailable, "live ingestion disabled; restart with --live")
		return false
	}
	return true
}

// maxIngestBody bounds one write request (8 MB) so a single oversized body
// cannot bypass the event-count backpressure of the apply queue.
const maxIngestBody = 8 << 20

// ingestTextRequest is the POST /ingest/text body.
type ingestTextRequest struct {
	Fragments []struct {
		URL  string `json:"url"`
		Text string `json:"text"`
	} `json:"fragments"`
}

func (s *Server) handleIngestText(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	var req ingestTextRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: "+err.Error())
		return
	}
	if len(req.Fragments) == 0 {
		writeError(w, http.StatusBadRequest, "no fragments in request")
		return
	}
	frags := make([]live.Fragment, len(req.Fragments))
	for i, f := range req.Fragments {
		if f.Text == "" {
			writeError(w, http.StatusBadRequest, "fragment with empty text")
			return
		}
		frags[i] = live.Fragment{URL: f.URL, Text: f.Text}
	}
	if err := s.ingester.IngestText(frags); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(frags)})
}

// ingestRecordsRequest is the POST /ingest/records body: flat JSON objects,
// the same row shape ingest.ReadJSON accepts.
type ingestRecordsRequest struct {
	Source  string           `json:"source"`
	Records []map[string]any `json:"records"`
}

func (s *Server) handleIngestRecords(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	var req ingestRecordsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, "no records in request")
		return
	}
	recs := make([]*record.Record, len(req.Records))
	for i, row := range req.Records {
		rec, err := ingest.RecordFromMap(row)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		recs[i] = rec
	}
	if err := s.ingester.IngestRecords(req.Source, recs); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(recs)})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	op, err := "flush", error(nil)
	if ck, _ := strconv.ParseBool(r.URL.Query().Get("checkpoint")); ck {
		op, err = "checkpoint", s.ingester.Checkpoint() // Checkpoint flushes internally
	} else {
		err = s.ingester.Flush()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": op + " complete"})
}

func (s *Server) handleLiveStats(w http.ResponseWriter, _ *http.Request) {
	if !s.requireLive(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.ingester.Stats())
}
