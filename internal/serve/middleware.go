package serve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/dterr"
	"repro/internal/obs"
)

// The serving middleware chain, outermost first:
//
//	metrics → rate limit → response cache → admission → mux
//
// Metrics wrap everything so 429s and cache hits are counted like any
// other response. The rate limit sits before the cache — a client over
// its budget is shed even for cached reads, so the limit means what it
// says. The cache sits before admission control: a cache hit costs a map
// probe and a body copy, so it would be wasteful to make hits queue
// behind expensive recomputes; admission bounds only the requests that
// actually reach the handlers. /healthz, /metrics, and /debug/pprof are
// exempt from rate limiting and admission (liveness probes and scrapers
// must not be shed by the very overload they exist to observe).

// ServerOption configures the middleware chain around a Server.
type ServerOption func(*serverOpts)

type serverOpts struct {
	reg        *obs.Registry
	generation func() uint64
	cacheBytes int64 // 0 = default when generation set; < 0 disables
	rate       float64
	burst      int
	maxActive  int
	maxQueue   int
	pprof      bool
}

// WithMetrics records request, latency, cache, and admission series into
// reg and mounts GET /metrics on the server.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(o *serverOpts) { o.reg = reg }
}

// WithGeneration supplies the data-generation source that keys the
// response cache and the ETags handed to clients. Without it the cache
// stays off — there is no safe invalidation signal.
func WithGeneration(fn func() uint64) ServerOption {
	return func(o *serverOpts) { o.generation = fn }
}

// WithCacheBytes bounds the response cache's memory (default 32 MB when a
// generation source is configured). Negative disables caching entirely.
func WithCacheBytes(n int64) ServerOption {
	return func(o *serverOpts) { o.cacheBytes = n }
}

// WithRateLimit enables per-client token-bucket rate limiting: rps
// requests per second sustained, bursting to burst (default: ceil(rps)).
// Clients are keyed by X-API-Key when present, else by remote address.
func WithRateLimit(rps float64, burst int) ServerOption {
	return func(o *serverOpts) { o.rate, o.burst = rps, burst }
}

// WithAdmission bounds concurrent handler work: at most maxActive
// requests run at once and at most maxQueue wait for a slot; beyond that
// requests are shed with 429 and a Retry-After hint before any query
// work starts.
func WithAdmission(maxActive, maxQueue int) ServerOption {
	return func(o *serverOpts) { o.maxActive, o.maxQueue = maxActive, maxQueue }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — opt-in, since
// profiles expose internals and cost CPU while running.
func WithPprof() ServerOption {
	return func(o *serverOpts) { o.pprof = true }
}

// exemptPath reports whether the operational endpoints bypass rate
// limiting and admission control.
func exemptPath(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof"
}

// writeBusyRetry writes the envelope 429 with a Retry-After hint.
func writeBusyRetry(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, dterr.New(dterr.CodeBusy, msg))
}

// ---- route normalization ------------------------------------------------

// routeLabel maps a request onto the server's registered route set so the
// metrics label cardinality stays bounded: known paths label as
// themselves, everything else collapses to "other".
func (s *Server) routeLabel(r *http.Request) string {
	if s.routes[r.URL.Path] {
		return r.URL.Path
	}
	return "other"
}

// ---- rate limiting ------------------------------------------------------

// clientKey identifies the token bucket a request draws from: the
// X-API-Key header when the caller authenticates, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// maxBuckets bounds the limiter's client table; past it, buckets idle
// long enough to have fully refilled are evicted (they would admit the
// same burst as a fresh bucket, so eviction loses nothing).
const maxBuckets = 4096

// tokenBucket is one client's budget under the lazy-refill scheme.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket table. Lock granularity is the
// whole table — admission is a few float ops, so contention is cheaper
// than per-bucket locks plus a concurrent map.
type rateLimiter struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newRateLimiter(rps float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Ceil(rps)
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rps: rps, burst: b, buckets: make(map[string]*tokenBucket)}
}

// allow draws one token for key, reporting how long until a token exists
// when the bucket is empty.
func (l *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tb, exists := l.buckets[key]
	if !exists {
		if len(l.buckets) >= maxBuckets {
			l.evictLocked(now)
		}
		tb = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = tb
	} else {
		tb.tokens = math.Min(l.burst, tb.tokens+now.Sub(tb.last).Seconds()*l.rps)
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tb.tokens) / l.rps * float64(time.Second))
}

// evictLocked drops buckets idle long enough to have refilled completely.
func (l *rateLimiter) evictLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rps * float64(time.Second))
	for k, tb := range l.buckets {
		if now.Sub(tb.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// rateLimitMiddleware sheds over-budget clients with 429 + Retry-After.
func (s *Server) rateLimitMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ok, retryAfter := s.limiter.allow(clientKey(r), time.Now())
		if !ok {
			if s.admissionDrops != nil {
				s.admissionDrops.With(s.routeLabel(r), "rate").Inc()
			}
			writeBusyRetry(w, retryAfter, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ---- admission control --------------------------------------------------

// admission is a counting semaphore with a bounded wait queue: maxActive
// requests run, maxQueue wait, and everything beyond is shed immediately —
// under overload the server answers 429 in microseconds instead of
// stacking goroutines until every response is slow.
type admission struct {
	slots    chan struct{}
	maxQueue int
	waiting  int64
	mu       sync.Mutex
}

func newAdmission(maxActive, maxQueue int) *admission {
	return &admission{slots: make(chan struct{}, maxActive), maxQueue: maxQueue}
}

// tryEnter claims a slot, queueing up to the bound. shed=true means the
// queue was full; err is a context cancellation while waiting.
func (a *admission) tryEnter(r *http.Request) (release func(), shed bool, err error) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, false, nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= int64(a.maxQueue) {
		a.mu.Unlock()
		return nil, true, nil
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, false, nil
	case <-r.Context().Done():
		return nil, false, dterr.FromContext(r.Context().Err())
	}
}

// admissionMiddleware bounds concurrent handler work, shedding with 429.
func (s *Server) admissionMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		release, shed, err := s.adm.tryEnter(r)
		if shed {
			if s.admissionDrops != nil {
				s.admissionDrops.With(s.routeLabel(r), "queue").Inc()
			}
			writeBusyRetry(w, time.Second, "server overloaded; admission queue full")
			return
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}
