package serve

import (
	"bytes"
	"container/list"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Response caching for the read-only /v1 GET routes.
//
// The cache key is (path, raw query, data generation): the fused-view /
// entity-store generation bump that already happens on every ingest is
// the invalidation signal, so a cached body can never survive the write
// that would change it. Pagination and filter parameters are part of the
// raw query and therefore of the key. ETags are strong and derived from
// the same pair — "<fnv64(path?query)>-<generation>" — which makes
// If-None-Match revalidation a pure computation: if the client's tag
// matches the tag the URL would get right now, nothing changed since the
// client cached it, and a 304 is correct even when the body itself has
// been evicted.
//
// Entries are LRU-evicted under a byte budget. Only 200 responses are
// stored: errors are cheap to recompute and caching them would pin
// transient failures.

// defaultCacheBytes is the response-cache budget when caching is enabled
// without an explicit size.
const defaultCacheBytes = 32 << 20

// maxCacheEntryBytes bounds one cached body so a single huge response
// cannot evict the whole working set.
const maxCacheEntryBytes = 4 << 20

// cacheableV1 is the read-only /v1 route set served from the cache.
// /v1/live/stats is deliberately absent: queue depths and batch latencies
// change without a data-generation bump.
var cacheableV1 = map[string]bool{
	"/v1/stats":    true,
	"/v1/types":    true,
	"/v1/top":      true,
	"/v1/cheapest": true,
	"/v1/find":     true,
	"/v1/show":     true,
}

// cacheEntry is one stored response.
type cacheEntry struct {
	key   string
	ctype string
	etag  string
	body  []byte
}

// respCache is a byte-bounded LRU over rendered responses.
type respCache struct {
	maxBytes int64

	mu      sync.Mutex
	bytes   int64
	ll      *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, revalidations, evictions *obs.Counter
	sizeBytes, sizeEntries                 *obs.Gauge
}

func newRespCache(maxBytes int64, reg *obs.Registry) *respCache {
	return &respCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		hits: reg.Counter("dt_cache_hits_total",
			"Responses served from the /v1 response cache.").With(),
		misses: reg.Counter("dt_cache_misses_total",
			"Cacheable requests that had to recompute.").With(),
		revalidations: reg.Counter("dt_cache_revalidations_total",
			"Conditional requests answered 304 Not Modified.").With(),
		evictions: reg.Counter("dt_cache_evictions_total",
			"Entries evicted by the LRU byte budget.").With(),
		sizeBytes:   reg.Gauge("dt_cache_bytes", "Bytes held by the response cache.").With(),
		sizeEntries: reg.Gauge("dt_cache_entries", "Entries held by the response cache.").With(),
	}
}

// cacheKey renders the storage key for one URL at one generation.
func cacheKey(path, rawQuery string, gen uint64) string {
	return path + "?" + rawQuery + "@" + strconv.FormatUint(gen, 10)
}

// etagFor computes the strong validator for one URL at one generation.
func etagFor(path, rawQuery string, gen uint64) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{'?'})
	_, _ = h.Write([]byte(rawQuery))
	return fmt.Sprintf("\"%x-%d\"", h.Sum64(), gen)
}

// get returns the cached entry for key, refreshing its recency.
func (c *respCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores one rendered response, evicting LRU entries past the byte
// budget. Oversized bodies are skipped.
func (c *respCache) put(e *cacheEntry) {
	n := int64(len(e.body)) + int64(len(e.key))
	if n > maxCacheEntryBytes || n > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		// A concurrent request for the same URL raced us here; keep the
		// existing entry, which is equally fresh (same generation key).
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	c.bytes += n
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= int64(len(old.body)) + int64(len(old.key))
		c.evictions.Inc()
	}
	c.sizeBytes.Set(c.bytes)
	c.sizeEntries.Set(int64(c.ll.Len()))
}

// recordingWriter tees a response into memory while streaming it to the
// client, so a miss can populate the cache without double-rendering.
// Buffering stops past maxCacheEntryBytes; the response still streams.
type recordingWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
	tooBig bool
}

func (w *recordingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if !w.tooBig {
		if w.buf.Len()+len(p) > maxCacheEntryBytes {
			w.tooBig = true
			w.buf.Reset()
		} else {
			w.buf.Write(p)
		}
	}
	return w.ResponseWriter.Write(p)
}

// cacheMiddleware serves the cacheable /v1 GET routes from the response
// cache with ETag revalidation.
func (s *Server) cacheMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || !cacheableV1[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		// One generation read per request: the key, the ETag, and the
		// store below all use this value, so a write landing mid-request
		// can make us cache a fresher body under the older generation
		// (harmless — that key dies with the bump) but never a stale body
		// under the newer one.
		gen := s.opts.generation()
		path, rawQuery := r.URL.Path, r.URL.RawQuery
		etag := etagFor(path, rawQuery, gen)

		if match := r.Header.Get("If-None-Match"); match != "" && etagMatch(match, etag) {
			s.cache.revalidations.Inc()
			s.cache.hits.Inc()
			w.Header().Set("ETag", etag)
			w.Header().Set("X-Cache", "REVALIDATED")
			w.WriteHeader(http.StatusNotModified)
			return
		}

		key := cacheKey(path, rawQuery, gen)
		if e, ok := s.cache.get(key); ok {
			s.cache.hits.Inc()
			w.Header().Set("Content-Type", e.ctype)
			w.Header().Set("ETag", e.etag)
			w.Header().Set("X-Cache", "HIT")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(e.body)
			return
		}

		s.cache.misses.Inc()
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Cache", "MISS")
		rw := &recordingWriter{ResponseWriter: w}
		next.ServeHTTP(rw, r)
		// Degraded (partial fan-out) bodies are under-counts from a
		// cluster mid-outage; caching one would keep serving the hole
		// after the shards heal, because the generation key does not
		// change when a node comes back. The handler deletes the ETag on
		// those responses for the same reason.
		if rw.Header().Get(degradedHeader) != "" {
			return
		}
		if rw.status == http.StatusOK && !rw.tooBig {
			s.cache.put(&cacheEntry{
				key:   key,
				ctype: rw.Header().Get("Content-Type"),
				etag:  etag,
				body:  append([]byte(nil), rw.buf.Bytes()...),
			})
		}
	})
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// candidate list or "*", with weak validators (W/ prefix) compared by
// opaque tag — the weak comparison is allowed for If-None-Match.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}
