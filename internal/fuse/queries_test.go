package fuse

import (
	"testing"

	"repro/internal/record"
)

func showRec(show, theater, price string) *record.Record {
	r := record.New()
	r.Set("SHOW_NAME", record.String(show))
	if theater != "" {
		r.Set("THEATER", record.String(theater))
	}
	if price != "" {
		r.Set("CHEAPEST_PRICE", record.String(price))
	}
	return r
}

func TestCheapestShows(t *testing.T) {
	records := []*record.Record{
		showRec("Matilda", "Shubert", "$27"),
		showRec("Wicked", "Gershwin", "$89"),
		showRec("Once", "Booth", "$45"),
		showRec("Pricy", "Palace", "not a price"),
		showRec("NoPrice", "Lyceum", ""),
	}
	top := CheapestShows(records, 2)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Show != "Matilda" || top[0].Price != 27 {
		t.Errorf("cheapest = %+v", top[0])
	}
	if top[1].Show != "Once" {
		t.Errorf("second = %+v", top[1])
	}
	all := CheapestShows(records, 0)
	if len(all) != 3 {
		t.Errorf("parseable shows = %d", len(all))
	}
}

func TestCheapestShowsTieBreak(t *testing.T) {
	records := []*record.Record{
		showRec("B Show", "x", "$50"),
		showRec("A Show", "y", "$50"),
	}
	top := CheapestShows(records, 0)
	if top[0].Show != "A Show" {
		t.Errorf("tie break = %+v", top)
	}
}

func TestShowsAt(t *testing.T) {
	records := []*record.Record{
		showRec("Matilda", "Shubert 225 W. 44th St", "$27"),
		showRec("Wicked", "Gershwin Theatre", "$89"),
		showRec("Ghost", "", ""),
	}
	got := ShowsAt(records, "shubert")
	if len(got) != 1 || got[0] != "Matilda" {
		t.Errorf("ShowsAt = %v", got)
	}
	if got := ShowsAt(records, ""); got != nil {
		t.Errorf("empty theater = %v", got)
	}
	if got := ShowsAt(records, "nonexistent"); len(got) != 0 {
		t.Errorf("missing theater = %v", got)
	}
}

func TestAttributeCoverage(t *testing.T) {
	records := []*record.Record{
		showRec("A", "T1", "$10"),
		showRec("B", "", "$20"),
		showRec("C", "T3", ""),
	}
	cov := AttributeCoverage(records, []string{"SHOW_NAME", "THEATER", "CHEAPEST_PRICE", "MISSING"})
	byAttr := map[string]Coverage{}
	for _, c := range cov {
		byAttr[c.Attr] = c
	}
	if byAttr["SHOW_NAME"].Filled != 3 {
		t.Errorf("show coverage = %+v", byAttr["SHOW_NAME"])
	}
	if byAttr["THEATER"].Filled != 2 || byAttr["CHEAPEST_PRICE"].Filled != 2 {
		t.Errorf("partial coverage = %+v", cov)
	}
	if byAttr["MISSING"].Filled != 0 || byAttr["MISSING"].Fraction() != 0 {
		t.Errorf("missing coverage = %+v", byAttr["MISSING"])
	}
	if f := byAttr["THEATER"].Fraction(); f < 0.66 || f > 0.67 {
		t.Errorf("fraction = %f", f)
	}
	if (Coverage{}).Fraction() != 0 {
		t.Error("zero coverage fraction")
	}
}
