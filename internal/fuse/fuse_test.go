package fuse

import (
	"context"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/store"
)

func buildStores(t *testing.T) *Engine {
	t.Helper()
	instances := store.NewSharded("dt.instance", "source_url", 2, 0)
	entities := store.NewSharded("dt.entity", "name", 2, 0)

	addInstance := func(url, text string) {
		instances.Insert(store.NewDoc().
			Set("source_url", store.Str(url)).
			Set("text", store.Str(text)))
	}
	addEntity := func(typ, name string, award bool) {
		d := store.NewDoc().Set("type", store.Str(typ)).Set("name", store.Str(name))
		if award {
			d.Set("attributes", store.Nested(store.NewDoc().Set("award_winning", store.Str("true"))))
		}
		entities.Insert(d)
	}

	addInstance("u1", "Matilda an award-winning import from London grossed 960,998.")
	addInstance("u2", "Matilda ticket sales rose.")
	addInstance("u3", "Wicked had a fine week.")
	for i := 0; i < 5; i++ {
		addEntity("Movie", "the walking dead", true)
	}
	for i := 0; i < 3; i++ {
		addEntity("Movie", "matilda", true)
	}
	addEntity("Movie", "wicked", false)  // not award-winning: excluded
	addEntity("Person", "matilda", true) // wrong type: excluded
	return &Engine{Instances: instances, Entities: entities}
}

func TestTopDiscussed(t *testing.T) {
	e := buildStores(t)
	ctx := context.Background()
	top, err := e.TopDiscussed(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Name != "The Walking Dead" || top[0].Mentions != 5 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Name != "Matilda" || top[1].Mentions != 3 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if got, err := e.TopDiscussed(ctx, 1); err != nil || len(got) != 1 {
		t.Errorf("k=1 gave %d (err %v)", len(got), err)
	}
}

func TestTextFeedsLongestFirst(t *testing.T) {
	e := buildStores(t)
	ctx := context.Background()
	feeds, err := e.TextFeeds(ctx, "Matilda", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 2 {
		t.Fatalf("feeds = %v", feeds)
	}
	if !strings.Contains(feeds[0], "960,998") {
		t.Errorf("longest feed first: %q", feeds[0])
	}
	if got, err := e.TextFeeds(ctx, "Matilda", 1); err != nil || len(got) != 1 {
		t.Errorf("limit = %d (err %v)", len(got), err)
	}
	if got, err := e.TextFeeds(ctx, "Nonexistent", 0); err != nil || len(got) != 0 {
		t.Errorf("missing show feeds = %v (err %v)", got, err)
	}
}

func TestWebTextRecordTableVShape(t *testing.T) {
	e := buildStores(t)
	r, err := e.WebTextRecord(context.Background(), "Matilda")
	if err != nil {
		t.Fatal(err)
	}
	if r.GetString("SHOW_NAME") != "Matilda" {
		t.Errorf("show_name = %q", r.GetString("SHOW_NAME"))
	}
	if !strings.Contains(r.GetString("TEXT_FEED"), "grossed") {
		t.Errorf("text_feed = %q", r.GetString("TEXT_FEED"))
	}
	// Table V property: no structured fields from text alone.
	for _, absent := range []string{"THEATER", "PERFORMANCE", "CHEAPEST_PRICE", "FIRST"} {
		if r.Has(absent) {
			t.Errorf("web-text record should not have %s", absent)
		}
	}
}

func TestEnrichAddsStructuredFields(t *testing.T) {
	e := buildStores(t)
	web, err := e.WebTextRecord(context.Background(), "Matilda")
	if err != nil {
		t.Fatal(err)
	}
	structured := record.New()
	structured.Source = "ft00"
	structured.Set("SHOW_NAME", record.String("Matilda"))
	structured.Set("THEATER", record.String("Shubert 225 W. 44th St between 7th and 8th"))
	structured.Set("PERFORMANCE", record.String("Tues at 7pm"))
	structured.Set("CHEAPEST_PRICE", record.String("$27"))
	structured.Set("FIRST", record.String("3/4/2013"))

	enriched := Enrich(web, structured)
	for _, attr := range TableVIOrder {
		if !enriched.Has(attr) {
			t.Errorf("enriched missing %s", attr)
		}
	}
	// Existing text fields win.
	if enriched.GetString("SHOW_NAME") != "Matilda" {
		t.Errorf("show name = %q", enriched.GetString("SHOW_NAME"))
	}
	if !strings.Contains(enriched.Source, "webinstance") || !strings.Contains(enriched.Source, "ft00") {
		t.Errorf("provenance = %q", enriched.Source)
	}
	// Original untouched (clone semantics).
	if web.Has("THEATER") {
		t.Error("Enrich mutated its input")
	}
}

func TestEnrichNilStructured(t *testing.T) {
	r := record.New()
	r.Set("A", record.Int(1))
	out := Enrich(r, nil)
	if !out.Equal(r) {
		t.Errorf("nil enrich = %v", out)
	}
}

func TestLookupNormalized(t *testing.T) {
	r1 := record.New()
	r1.Set("SHOW_NAME", record.String("Matilda"))
	r2 := record.New()
	r2.Set("SHOW_NAME", record.String("The  MATILDA")) // normalization is lower+space collapse
	r3 := record.New()
	r3.Set("SHOW_NAME", record.String("Wicked"))
	got := Lookup([]*record.Record{r1, r2, r3}, "SHOW_NAME", "matilda")
	if len(got) != 1 || got[0] != r1 {
		t.Errorf("lookup = %d records", len(got))
	}
}

func TestFormatKVOrderAndQuoting(t *testing.T) {
	r := record.New()
	r.Set("TEXT_FEED", record.String("some text"))
	r.Set("SHOW_NAME", record.String("Matilda"))
	r.Set("EXTRA", record.String("x"))
	out := FormatKV(r, TableVIOrder)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "SHOW_NAME") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[0], `"Matilda"`) {
		t.Errorf("quoting = %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "EXTRA") {
		t.Errorf("non-preferred should come last: %q", lines[len(lines)-1])
	}
	// No duplicates for preferred attrs present in record.
	if strings.Count(out, "SHOW_NAME") != 1 {
		t.Errorf("duplicate rows:\n%s", out)
	}
}
