// Package fuse implements the query side of the fused system: mention
// ranking over the web-text store (Table IV), text-only entity views
// (Table V), and the enrichment join across the integrated global schema
// that adds structured fields to text results (Table VI).
package fuse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/record"
	"repro/internal/store"
	"repro/internal/textutil"
)

// Discussed is one row of the Table IV ranking.
type Discussed struct {
	Name     string
	Mentions int64
}

// Engine queries the web-text stores.
type Engine struct {
	// Instances is the WEBINSTANCE namespace (text fragments + entity refs).
	Instances *store.Sharded
	// Entities is the WEBENTITIES namespace (typed entity documents).
	Entities *store.Sharded
}

// TopDiscussed ranks award-winning movies/shows by mention count in the
// entity store — the Table IV query. Ties break lexicographically. The
// aggregation runs shard-local maps in parallel and merges them, so the
// scan cost is bounded by the largest shard; with remote shards it is
// bounded by the slowest shard's round trip.
func (e *Engine) TopDiscussed(ctx context.Context, k int) ([]Discussed, error) {
	parts := make([]map[string]*Discussed, e.Entities.NumShards())
	err := e.Entities.ForEachShard(func(shard int, b store.ShardBackend) error {
		_, docs, err := b.Snapshot(ctx)
		if store.AbsorbShardError(ctx, e.Entities.NS(), shard, err) {
			return nil
		}
		if err != nil {
			return err
		}
		counts := map[string]*Discussed{}
		for _, d := range docs {
			if d.PathString("type") != "Movie" {
				continue
			}
			if d.PathString("attributes.award_winning") != "true" {
				continue
			}
			name := textutil.Normalize(d.PathString("name"))
			if name == "" {
				continue
			}
			dd, ok := counts[name]
			if !ok {
				dd = &Discussed{Name: displayName(d.PathString("name"))}
				counts[name] = dd
			}
			dd.Mentions++
		}
		parts[shard] = counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[string]*Discussed{}
	for _, counts := range parts {
		for name, d := range counts {
			if got, ok := merged[name]; ok {
				got.Mentions += d.Mentions
			} else {
				merged[name] = d
			}
		}
	}
	out := make([]Discussed, 0, len(merged))
	for _, d := range merged {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mentions != out[j].Mentions {
			return out[i].Mentions > out[j].Mentions
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func displayName(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		r := []rune(w)
		if len(r) > 0 && r[0] >= 'a' && r[0] <= 'z' {
			r[0] = r[0] - 'a' + 'A'
		}
		words[i] = string(r)
	}
	return strings.Join(words, " ")
}

// TextFeeds returns the text fragments mentioning the show, most
// informative first — the demo surfaces the feed richest in box-office
// detail. Relevance counts "grossed" spans, show mentions, and award
// context; ties break toward longer, then lexicographically smaller feeds.
func (e *Engine) TextFeeds(ctx context.Context, show string, limit int) ([]string, error) {
	// The Contains filter is served by the instance store's inverted text
	// index when one exists, so this touches only candidate fragments
	// instead of the whole corpus.
	docs, err := e.Instances.FindCtx(ctx, store.Contains("text", show))
	if err != nil {
		return nil, err
	}
	lowShow := strings.ToLower(show)
	// Relevance is the best single sentence about the queried show:
	// "grossed" amounts co-occurring with the show name dominate, then
	// mention count and award context. Scoring per-sentence (max, not sum)
	// keeps a fragment that merely mentions many shows from outranking a
	// dense box-office statement about this one. Scores are computed once
	// per feed, not once per comparison — sentence splitting is the
	// expensive part.
	score := func(s string) int {
		best := 0
		for _, sent := range textutil.Sentences(s) {
			low := strings.ToLower(sent)
			if !strings.Contains(low, lowShow) {
				continue
			}
			v := 4*strings.Count(low, "grossed") +
				2*strings.Count(low, lowShow) +
				strings.Count(low, "award-winning")
			if v > best {
				best = v
			}
		}
		return best
	}
	type scoredFeed struct {
		feed  string
		score int
	}
	scored := make([]scoredFeed, 0, len(docs))
	for _, d := range docs {
		text := d.PathString("text")
		scored = append(scored, scoredFeed{feed: text, score: score(text)})
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].score != scored[j].score {
			return scored[i].score > scored[j].score
		}
		if len(scored[i].feed) != len(scored[j].feed) {
			return len(scored[i].feed) > len(scored[j].feed)
		}
		return scored[i].feed < scored[j].feed
	})
	if limit > 0 && len(scored) > limit {
		scored = scored[:limit]
	}
	feeds := make([]string, 0, len(scored))
	for _, s := range scored {
		feeds = append(feeds, s.feed)
	}
	return feeds, nil
}

// WebTextRecord builds the Table V view: what the system knows about a show
// from web text alone (SHOW_NAME and TEXT_FEED; no theaters, pricing or
// schedules).
func (e *Engine) WebTextRecord(ctx context.Context, show string) (*record.Record, error) {
	r := record.New()
	r.Source = "webinstance"
	r.Set("SHOW_NAME", record.String(show))
	feeds, err := e.TextFeeds(ctx, show, 1)
	if err != nil {
		return nil, err
	}
	if len(feeds) > 0 {
		r.Set("TEXT_FEED", record.String(feeds[0]))
	}
	return r, nil
}

// Enrich merges the structured record for the same entity into the web-text
// record — the Table VI enrichment join. Fields already present win (text
// evidence is what the user searched); structured fields fill the gaps.
func Enrich(webText *record.Record, structured *record.Record) *record.Record {
	out := webText.Clone()
	if structured == nil {
		return out
	}
	for _, f := range structured.Fields() {
		if f.Value.IsNull() {
			continue
		}
		if !out.Has(f.Name) {
			out.Set(f.Name, f.Value)
		}
	}
	if structured.Source != "" {
		if out.Source != "" {
			out.Source = out.Source + "+" + structured.Source
		} else {
			out.Source = structured.Source
		}
	}
	return out
}

// Lookup finds records whose attr value normalizes equal to value.
func Lookup(records []*record.Record, attr, value string) []*record.Record {
	want := textutil.Normalize(value)
	var out []*record.Record
	for _, r := range records {
		if textutil.Normalize(r.GetString(attr)) == want {
			out = append(out, r)
		}
	}
	return out
}

// ShowIndex is a hash index over one attribute of a record set, keyed by
// the normalized attribute value — the precomputed form of Lookup. Built
// once per fused-view snapshot, it turns the per-query O(n) renormalizing
// scan into a single map probe. A ShowIndex is immutable after NewShowIndex
// and safe for concurrent readers.
type ShowIndex struct {
	attr  string
	byKey map[string][]*record.Record
}

// NewShowIndex indexes records by the normalized value of attr, preserving
// record order within each key.
func NewShowIndex(records []*record.Record, attr string) *ShowIndex {
	ix := &ShowIndex{attr: attr, byKey: make(map[string][]*record.Record, len(records))}
	for _, r := range records {
		key := textutil.Normalize(r.GetString(attr))
		ix.byKey[key] = append(ix.byKey[key], r)
	}
	return ix
}

// Lookup returns the records whose indexed attribute normalizes equal to
// value, in the order they were indexed — identical to Lookup over the
// same records.
func (ix *ShowIndex) Lookup(value string) []*record.Record {
	return ix.byKey[textutil.Normalize(value)]
}

// FormatKV renders a record in the paper's Table V/VI style: one attribute
// per row, preferred attributes first, values quoted.
func FormatKV(r *record.Record, preferred []string) string {
	var b strings.Builder
	printed := map[string]bool{}
	emit := func(name string) {
		v, ok := r.Get(name)
		if !ok || v.IsNull() {
			return
		}
		key := record.NormalizeName(name)
		if printed[key] {
			return
		}
		printed[key] = true
		fmt.Fprintf(&b, "%-16s %q\n", strings.ToUpper(key), v.Str())
	}
	for _, name := range preferred {
		emit(name)
	}
	for _, f := range r.Fields() {
		emit(f.Name)
	}
	return b.String()
}

// TableVIOrder is the attribute order of the paper's Table VI.
var TableVIOrder = []string{"SHOW_NAME", "THEATER", "PERFORMANCE", "TEXT_FEED", "CHEAPEST_PRICE", "FIRST"}
