package fuse

import (
	"sort"
	"strings"

	"repro/internal/clean"
	"repro/internal/record"
	"repro/internal/textutil"
)

// Additional fused-view queries: the "best price possible" side of the
// paper's demo narrative, run over the consolidated structured records.

// PricedShow is a show with its parsed cheapest price.
type PricedShow struct {
	Show  string
	Price float64
	// Raw is the original price rendering ("$27").
	Raw string
}

// CheapestShows ranks consolidated records by parsed CHEAPEST_PRICE
// ascending — "the best price possible" query. Records without a parseable
// price are skipped; k <= 0 returns all.
func CheapestShows(records []*record.Record, k int) []PricedShow {
	var out []PricedShow
	for _, r := range records {
		show := r.GetString("SHOW_NAME")
		if show == "" {
			continue
		}
		raw := r.GetString("CHEAPEST_PRICE")
		if raw == "" {
			continue
		}
		money, err := clean.ParseMoney(raw)
		if err != nil {
			continue
		}
		out = append(out, PricedShow{Show: show, Price: money.Amount, Raw: raw})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Price != out[j].Price {
			return out[i].Price < out[j].Price
		}
		return out[i].Show < out[j].Show
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ShowsAt returns the shows whose THEATER mentions the given venue
// (normalized substring match), sorted by name.
func ShowsAt(records []*record.Record, theater string) []string {
	want := textutil.Normalize(theater)
	if want == "" {
		return nil
	}
	var out []string
	for _, r := range records {
		if strings.Contains(textutil.Normalize(r.GetString("THEATER")), want) {
			if show := r.GetString("SHOW_NAME"); show != "" {
				out = append(out, show)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Coverage reports how many of the given attributes each record fills —
// the enrichment-completeness measure of the fused table.
type Coverage struct {
	Attr   string
	Filled int
	Total  int
}

// Fraction is Filled/Total (0 when empty).
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Filled) / float64(c.Total)
}

// AttributeCoverage measures per-attribute fill rates across records.
func AttributeCoverage(records []*record.Record, attrs []string) []Coverage {
	out := make([]Coverage, len(attrs))
	for i, attr := range attrs {
		out[i] = Coverage{Attr: attr, Total: len(records)}
		for _, r := range records {
			if v, ok := r.Get(attr); ok && !v.IsNull() && v.Str() != "" {
				out[i].Filled++
			}
		}
	}
	return out
}
